/**
 * @file
 * Tests for the power model, sensors, energy metering, and the
 * isolation-validation procedure.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "hw/server.hh"
#include "power/energy.hh"
#include "power/isolation.hh"
#include "power/power_model.hh"
#include "power/sensors.hh"

using namespace snic;
using namespace snic::power;
using snic::alg::WorkCounters;

TEST(PowerModel, IdleMatchesPaper)
{
    sim::Simulation s;
    hw::ServerModel server(s);
    ServerPowerModel power(server);
    EXPECT_NEAR(power.serverWatts(), 252.0, 0.5);
    EXPECT_NEAR(power.snicWatts(), 29.0, 0.5);
}

TEST(PowerModel, ActiveAddersWithinPaperBounds)
{
    sim::Simulation s;
    hw::ServerModel server(s);
    ServerPowerModel power(server);
    // Fully busy host at high traffic: active adder up to ~150.6 W.
    const double host_full =
        power.serverWattsAt(1.0, 0.0, 0.0, 90.0) - 252.0;
    EXPECT_GT(host_full, 120.0);
    EXPECT_LT(host_full, 160.0);
    // Fully busy SNIC: active adder up to ~5.4 W.
    const double snic_full = power.snicWattsAt(1.0, 1.0, 50.0) - 29.0;
    EXPECT_GT(snic_full, 3.5);
    EXPECT_LT(snic_full, 6.0);
}

TEST(PowerModel, RailsSplitSumsToTotal)
{
    sim::Simulation s;
    hw::ServerModel server(s);
    ServerPowerModel power(server);
    const double total = power.snicWatts();
    EXPECT_NEAR(power.snicRailWatts(true) + power.snicRailWatts(false),
                total, 1e-9);
    EXPECT_GT(power.snicRailWatts(true), power.snicRailWatts(false));
}

TEST(PowerModel, ReflectsPlatformActivity)
{
    sim::Simulation s;
    hw::ServerModel server(s);
    ServerPowerModel power(server);
    const double idle = power.serverWatts();
    WorkCounters w;
    w.branchyOps = 1'000'000;  // ~1.1 ms of host work
    server.hostCpu().submit(w, 0, nullptr);
    // Mid-service: one host core busy.
    s.runUntil(sim::usToTicks(100.0));
    EXPECT_GT(power.serverWatts(), idle + 5.0);
    s.runAll();
    EXPECT_NEAR(power.serverWatts(), idle, 0.5);
}

TEST(Sensors, BmcQuantizesToWholeWatts)
{
    sim::Simulation s(3);
    auto sensor = makeBmcSensor(s, [] { return 253.4; });
    sensor.start(sim::secToTicks(10.0));
    s.runUntil(sim::secToTicks(10.5));
    ASSERT_GE(sensor.sampleCount(), 10u);
    for (std::size_t i = 0; i < sensor.sampleCount(); ++i) {
        const double w = sensor.sample(i).second;
        EXPECT_DOUBLE_EQ(w, std::round(w));
        EXPECT_NEAR(w, 253.4, 2.1);  // quantization + noise
    }
}

TEST(Sensors, YoctoResolvesMilliwattSwings)
{
    // A 5.4 W swing (the SNIC's active range): the Yocto rig must
    // resolve it crisply; the BMC barely sees it through its noise.
    sim::Simulation s(4);
    auto source_low = [] { return 29.0; };
    auto source_high = [] { return 34.4; };
    auto yocto_low = makeYoctoWattSensor(s, "y1", source_low);
    auto yocto_high = makeYoctoWattSensor(s, "y2", source_high);
    yocto_low.start(sim::secToTicks(2.0));
    yocto_high.start(sim::secToTicks(2.0));
    s.runUntil(sim::secToTicks(2.5));
    EXPECT_NEAR(yocto_high.meanWatts() - yocto_low.meanWatts(), 5.4,
                0.01);
}

TEST(Sensors, SamplingRates)
{
    sim::Simulation s(5);
    auto bmc = makeBmcSensor(s, [] { return 252.0; });
    auto yocto = makeYoctoWattSensor(s, "y", [] { return 29.0; });
    bmc.start(sim::secToTicks(5.0));
    yocto.start(sim::secToTicks(5.0));
    s.runUntil(sim::secToTicks(5.2));
    // 10x sampling-rate gap (Sec. 3.2).
    EXPECT_NEAR(static_cast<double>(yocto.sampleCount()) /
                    static_cast<double>(bmc.sampleCount()),
                10.0, 1.5);
}

TEST(EnergyMeter, IdleWindowEnergy)
{
    sim::Simulation s;
    hw::ServerModel server(s);
    ServerPowerModel power(server);
    EnergyMeter meter(server, power);
    meter.begin();
    s.runUntil(sim::msToTicks(100.0));
    const EnergyReading r = meter.end(0.0);
    EXPECT_NEAR(r.seconds, 0.1, 1e-9);
    EXPECT_NEAR(r.avgServerWatts, 252.0, 0.5);
    EXPECT_NEAR(r.serverJoules, 25.2, 0.1);
}

TEST(EnergyMeter, BusyWindowCostsMore)
{
    sim::Simulation s;
    hw::ServerModel server(s);
    ServerPowerModel power(server);
    EnergyMeter meter(server, power);
    meter.begin();
    // Keep one host core busy for the whole window.
    WorkCounters w;
    w.branchyOps = 100'000;  // ~110 us
    for (int i = 0; i < 900; ++i)
        server.hostCpu().submit(w, 0, nullptr);
    s.runUntil(sim::msToTicks(100.0));
    const EnergyReading r = meter.end(0.0);
    EXPECT_GT(r.hostUtil, 0.1);
    EXPECT_GT(r.avgServerWatts, 253.0);
}

TEST(Isolation, DifferenceMatchesDirectMeasurement)
{
    // Sec. 3.2: with-vs-without difference approximately equals the
    // riser measurement.
    sim::Simulation s;
    hw::ServerModel server(s);
    ServerPowerModel power(server);
    for (double util : {0.0, 0.5, 1.0}) {
        const auto r = validateIsolation(power, 0.0, util, util, 20.0);
        EXPECT_LT(r.mismatchFraction, 0.05) << util;
        EXPECT_GT(r.riserWatts, 28.0);
    }
}

TEST(Isolation, SensorResolutionClaims)
{
    const auto r = compareSensorResolution();
    EXPECT_DOUBLE_EQ(r.resolutionRatio, 500.0);
    EXPECT_DOUBLE_EQ(r.samplingRatio, 10.0);
}
