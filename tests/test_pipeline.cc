/**
 * @file
 * Tests for the stage pipeline: per-stage stats, the data-plane
 * bypass, accelerator residency, and window isolation.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/testbed.hh"

using namespace snic;
using namespace snic::core;

namespace {

Testbed
makeBed(const char *id, hw::Platform p, std::uint64_t seed = 1)
{
    TestbedConfig cfg;
    cfg.workloadId = id;
    cfg.platform = p;
    cfg.seed = seed;
    return Testbed(cfg);
}

const StageSnapshot &
stageNamed(const Measurement &m, const char *name)
{
    for (const auto &s : m.stageStats) {
        if (s.name == name)
            return s;
    }
    ADD_FAILURE() << "no stage named " << name;
    static const StageSnapshot none;
    return none;
}

} // anonymous namespace

TEST(Pipeline, RequestsFlowThroughAllFiveStages)
{
    auto bed = makeBed("micro_udp_1024", hw::Platform::HostCpu);
    const auto m = bed.measure(5.0, sim::msToTicks(1.0),
                               sim::msToTicks(10.0));
    ASSERT_EQ(m.stageStats.size(), 5u);
    EXPECT_EQ(m.stageStats[0].name, "ingress");
    EXPECT_EQ(m.stageStats[1].name, "stack");
    EXPECT_EQ(m.stageStats[2].name, "app");
    EXPECT_EQ(m.stageStats[3].name, "accelerator");
    EXPECT_EQ(m.stageStats[4].name, "egress");

    const auto &ingress = stageNamed(m, "ingress");
    EXPECT_GT(ingress.accepted, 1000u);
    // Synchronous stages forward everything they accept; the app
    // stage may hold a few requests in the CPU queue at window end.
    EXPECT_EQ(ingress.forwarded, ingress.accepted);
    const auto &app = stageNamed(m, "app");
    EXPECT_EQ(app.accepted, ingress.accepted);
    EXPECT_LE(app.forwarded, app.accepted);
    EXPECT_GE(app.forwarded + app.inFlight, app.accepted);
    const auto &egress = stageNamed(m, "egress");
    EXPECT_GT(egress.accepted, 1000u);
    EXPECT_LE(egress.accepted, ingress.accepted);
}

TEST(Pipeline, AppResidencyCoversQueueingPlusService)
{
    auto bed = makeBed("micro_udp_1024", hw::Platform::HostCpu);
    const auto light = bed.measure(2.0, sim::msToTicks(1.0),
                                   sim::msToTicks(5.0));
    const auto heavy = bed.measure(24.0, sim::msToTicks(1.0),
                                   sim::msToTicks(5.0));
    const auto &light_app = stageNamed(light, "app");
    const auto &heavy_app = stageNamed(heavy, "app");
    EXPECT_GT(light_app.meanResidencyUs, 0.0);
    // Near capacity the CPU queue grows, so residency must too.
    EXPECT_GT(heavy_app.meanResidencyUs,
              light_app.meanResidencyUs * 1.5);
}

TEST(Pipeline, DataPlaneOffloadSkipsStackWork)
{
    // OvS data-plane offload forwards in the eSwitch: the stack
    // stage charges no rx/tx work, so a megaflow hit costs the SNIC
    // CPU only the tiny statistics residual — orders of magnitude
    // below a stack-driven workload on the same cores.
    auto ovs = makeBed("ovs_100", hw::Platform::SnicCpu);
    const auto mo = ovs.measure(10.0, sim::msToTicks(1.0),
                                sim::msToTicks(10.0));
    auto udp = makeBed("micro_udp_1024", hw::Platform::SnicCpu);
    const auto mu = udp.measure(2.0, sim::msToTicks(1.0),
                                sim::msToTicks(10.0));
    const auto &ovs_app = stageNamed(mo, "app");
    const auto &udp_app = stageNamed(mu, "app");
    EXPECT_GT(stageNamed(mo, "ingress").accepted, 1000u);
    EXPECT_GT(ovs_app.meanResidencyUs, 0.0);
    EXPECT_LT(ovs_app.meanResidencyUs, udp_app.meanResidencyUs / 4);
}

TEST(Pipeline, AcceleratorResidencyOnlyOnAccelPlatform)
{
    auto host = makeBed("rem_exe_mtu", hw::Platform::HostCpu);
    const auto mh = host.measure(10.0, sim::msToTicks(1.0),
                                 sim::msToTicks(5.0));
    EXPECT_EQ(stageNamed(mh, "accelerator").meanResidencyUs, 0.0);

    auto accel = makeBed("rem_exe_mtu", hw::Platform::SnicAccel);
    const auto ma = accel.measure(10.0, sim::msToTicks(1.0),
                                  sim::msToTicks(5.0));
    EXPECT_GT(stageNamed(ma, "accelerator").meanResidencyUs, 0.0);
}

TEST(Pipeline, StatsResetBetweenWindows)
{
    auto bed = makeBed("micro_udp_1024", hw::Platform::HostCpu);
    const auto first = bed.measure(5.0, sim::msToTicks(1.0),
                                   sim::msToTicks(10.0));
    const auto second = bed.measure(5.0, sim::msToTicks(1.0),
                                    sim::msToTicks(10.0));
    const auto a = stageNamed(first, "ingress").accepted;
    const auto b = stageNamed(second, "ingress").accepted;
    // Same rate, same window: similar counts — not cumulative.
    EXPECT_NEAR(static_cast<double>(b), static_cast<double>(a),
                0.2 * static_cast<double>(a));
}

TEST(Pipeline, ClosedLoopJobsTraverseThePipeline)
{
    auto bed = makeBed("fio_read", hw::Platform::HostCpu);
    const auto m = bed.measureClosedLoop(4, sim::msToTicks(1.0),
                                         sim::msToTicks(10.0));
    const auto &egress = stageNamed(m, "egress");
    EXPECT_GT(egress.accepted, 100u);
    EXPECT_EQ(stageNamed(m, "ingress").dropped, 0u);
    EXPECT_EQ(stageNamed(m, "ingress").droppedStale, 0u);
}

TEST(Pipeline, StageLookupByName)
{
    auto bed = makeBed("micro_udp_1024", hw::Platform::HostCpu);
    ASSERT_NE(bed.pipeline().stage("app"), nullptr);
    EXPECT_EQ(bed.pipeline().stage("app")->name(), "app");
    EXPECT_EQ(bed.pipeline().stage("nonesuch"), nullptr);
}

TEST(Pipeline, TracedTimelinesAreConsistent)
{
    auto bed = makeBed("micro_udp_1024", hw::Platform::HostCpu);
    bed.enableTracing(8);
    const auto m = bed.measure(5.0, sim::msToTicks(1.0),
                               sim::msToTicks(10.0));
    ASSERT_FALSE(m.slowestTraces.empty());
    EXPECT_LE(m.slowestTraces.size(), 8u);

    sim::Tick prev_latency = ~sim::Tick(0);
    for (const auto &t : m.slowestTraces) {
        // Slowest-first ordering.
        EXPECT_LE(t.latency(), prev_latency);
        prev_latency = t.latency();

        // The standard chain visits all five stages, front first.
        ASSERT_EQ(t.hopCount, 5u);
        EXPECT_EQ(t.hops[0].stage, 0u);
        EXPECT_GE(t.hops[0].entered, t.createdAt);

        // Timestamps are monotone and handoffs are gapless: a stage
        // is entered exactly when the previous one is exited.
        for (std::uint8_t i = 0; i < t.hopCount; ++i) {
            EXPECT_LE(t.hops[i].entered, t.hops[i].exited);
            if (i > 0) {
                EXPECT_GT(t.hops[i].stage, t.hops[i - 1].stage);
                EXPECT_EQ(t.hops[i].entered, t.hops[i - 1].exited);
            }
        }
        const TraceHop &last = t.hops[t.hopCount - 1];
        EXPECT_EQ(t.completedAt, last.exited);

        // Per-stage residencies sum exactly to the pipeline transit
        // time; end-to-end latency adds only the pre-pipeline link
        // hop (serialization + 1 us propagation + eSwitch).
        EXPECT_EQ(t.totalResidency(), last.exited - t.hops[0].entered);
        EXPECT_GE(t.latency(), t.totalResidency());
        EXPECT_LE(t.latency() - t.totalResidency(),
                  sim::usToTicks(10.0));
    }

    // The tail of this CPU-bound workload is attributed to the app
    // stage (CPU queueing + service).
    const TailAttribution tail = attributeTail(m.slowestTraces);
    ASSERT_GE(tail.stage, 0);
    ASSERT_LT(static_cast<std::size_t>(tail.stage),
              m.stageStats.size());
    EXPECT_EQ(m.stageStats[tail.stage].name, "app");
    EXPECT_GT(tail.share, 0.5);
    EXPECT_EQ(tail.traces, m.slowestTraces.size());
    EXPECT_GT(tail.dominated, 0u);
}

TEST(Pipeline, DisabledTracingIsBitwiseIdenticalToTraced)
{
    // The null-object path: a traced run must not perturb a single
    // measured number relative to an untraced run of the same seed.
    auto plain = makeBed("micro_udp_1024", hw::Platform::HostCpu, 9);
    auto traced = makeBed("micro_udp_1024", hw::Platform::HostCpu, 9);
    traced.enableTracing(16);

    const auto a = plain.measure(8.0, sim::msToTicks(1.0),
                                 sim::msToTicks(10.0));
    const auto b = traced.measure(8.0, sim::msToTicks(1.0),
                                  sim::msToTicks(10.0));
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.generated, b.generated);
    EXPECT_EQ(a.achievedGbps, b.achievedGbps);
    EXPECT_EQ(a.goodputGbps, b.goodputGbps);
    EXPECT_EQ(a.achievedRps, b.achievedRps);
    EXPECT_EQ(a.latency.count(), b.latency.count());
    EXPECT_EQ(a.latency.min(), b.latency.min());
    EXPECT_EQ(a.latency.max(), b.latency.max());
    EXPECT_EQ(a.latency.p50(), b.latency.p50());
    EXPECT_EQ(a.latency.p99(), b.latency.p99());
    EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());

    EXPECT_TRUE(a.slowestTraces.empty());
    ASSERT_FALSE(b.slowestTraces.empty());
    // The kept tail matches the histogram's view of the maximum.
    EXPECT_EQ(b.slowestTraces.size(), 16u);
}

TEST(Pipeline, TracedClosedLoopAndRepeatedWindows)
{
    auto bed = makeBed("fio_read", hw::Platform::HostCpu);
    bed.enableTracing(4);
    const auto first = bed.measureClosedLoop(4, sim::msToTicks(1.0),
                                             sim::msToTicks(10.0));
    ASSERT_FALSE(first.slowestTraces.empty());
    EXPECT_LE(first.slowestTraces.size(), 4u);

    // A second window reports its own slowest set, not leftovers.
    const auto second = bed.measureClosedLoop(4, sim::msToTicks(1.0),
                                              sim::msToTicks(10.0));
    ASSERT_FALSE(second.slowestTraces.empty());
    for (const auto &t : second.slowestTraces)
        EXPECT_GE(t.enteredPipeline(), bed.pipeline().epoch());
}

TEST(Pipeline, TraceSlowestOptionFlowsThroughExperiment)
{
    ExperimentOptions opts;
    opts.targetSamples = 2000;
    opts.traceSlowest = 3;
    const auto m = measureAtRate("micro_udp_1024",
                                 hw::Platform::HostCpu, 5.0, opts);
    EXPECT_FALSE(m.slowestTraces.empty());
    EXPECT_LE(m.slowestTraces.size(), 3u);

    const auto r = runExperiment("micro_udp_1024",
                                 hw::Platform::HostCpu, opts);
    EXPECT_FALSE(r.slowestTraces.empty());
    EXPECT_LE(r.slowestTraces.size(), 3u);
}

namespace {

/** Build a synthetic trace visiting (stage, residency) hops
 *  back-to-back starting at tick 1000. */
RequestTrace
syntheticTrace(const std::vector<std::pair<std::uint8_t, sim::Tick>>
                   &hops)
{
    RequestTrace t;
    t.createdAt = 500;
    sim::Tick now = 1000;
    for (const auto &[stage, residency] : hops) {
        t.enter(stage, now, 0);
        now += residency;
        t.exitStage(now);
    }
    t.completedAt = now;
    return t;
}

} // anonymous namespace

TEST(TailAttribution, EmptyInputHasNoStage)
{
    const TailAttribution a = attributeTail({});
    EXPECT_EQ(a.stage, -1);
    EXPECT_EQ(a.share, 0.0);
    EXPECT_EQ(a.dominated, 0u);
    EXPECT_EQ(a.traces, 0u);
}

TEST(TailAttribution, SingleStageTraceOwnsTheWholeTail)
{
    const std::vector<RequestTrace> traces{
        syntheticTrace({{2, 400}})};
    const TailAttribution a = attributeTail(traces);
    EXPECT_EQ(a.stage, 2);
    EXPECT_DOUBLE_EQ(a.share, 1.0);
    EXPECT_EQ(a.dominated, 1u);
    EXPECT_EQ(a.traces, 1u);
}

TEST(TailAttribution, DominantStageWinsByResidencySum)
{
    // Stage 3 holds 600 of 1000 summed ticks and is the largest hop
    // in both traces.
    const std::vector<RequestTrace> traces{
        syntheticTrace({{0, 100}, {3, 250}, {4, 50}}),
        syntheticTrace({{0, 100}, {3, 350}, {4, 150}}),
    };
    const TailAttribution a = attributeTail(traces);
    EXPECT_EQ(a.stage, 3);
    EXPECT_DOUBLE_EQ(a.share, 0.6);
    EXPECT_EQ(a.dominated, 2u);
    EXPECT_EQ(a.traces, 2u);
}

TEST(TailAttribution, DominatedCountsOnlyLargestHopVotes)
{
    // Stage 1 wins the residency sum (500 vs 400) but is the
    // largest hop in only one of the two traces.
    const std::vector<RequestTrace> traces{
        syntheticTrace({{1, 400}, {2, 100}}),
        syntheticTrace({{1, 100}, {2, 300}}),
    };
    const TailAttribution a = attributeTail(traces);
    EXPECT_EQ(a.stage, 1);
    EXPECT_DOUBLE_EQ(a.share, 500.0 / 900.0);
    EXPECT_EQ(a.dominated, 1u);
}

TEST(TailAttribution, SummedResidencyTieGoesToTheEarlierStage)
{
    // Both stages sum to 300: max_element keeps the first maximum,
    // i.e. the lowest pipeline index.
    const std::vector<RequestTrace> traces{
        syntheticTrace({{1, 300}, {4, 300}})};
    const TailAttribution a = attributeTail(traces);
    EXPECT_EQ(a.stage, 1);
    EXPECT_DOUBLE_EQ(a.share, 0.5);
    // ...while the per-trace largest-hop vote breaks ties toward
    // the *later* hop, so the earlier stage collects no vote here.
    EXPECT_EQ(a.dominated, 0u);
}

TEST(TailAttribution, ZeroResidencyTimelinesAttributeNothing)
{
    // Hops that enter and exit on the same tick carry no residency;
    // with a zero total there is no stage to blame.
    const std::vector<RequestTrace> traces{
        syntheticTrace({{0, 0}, {1, 0}})};
    const TailAttribution a = attributeTail(traces);
    EXPECT_EQ(a.stage, -1);
    EXPECT_EQ(a.share, 0.0);
    EXPECT_EQ(a.traces, 1u);
}

TEST(TailAttribution, RevisitedStageAccumulatesAcrossHops)
{
    // A stage visited twice in one timeline (e.g. a retry) sums its
    // residencies: stage 2 totals 350 and beats stage 0's 300.
    const std::vector<RequestTrace> traces{
        syntheticTrace({{2, 150}, {0, 300}, {2, 200}})};
    const TailAttribution a = attributeTail(traces);
    EXPECT_EQ(a.stage, 2);
    EXPECT_DOUBLE_EQ(a.share, 350.0 / 650.0);
    // The largest single hop is stage 0's 300, so the vote differs
    // from the summed winner.
    EXPECT_EQ(a.dominated, 0u);
}

TEST(TailAttribution, SynchronousHopsReportPureService)
{
    // syntheticTrace never calls markDispatch, so every hop keeps
    // dispatched == serviceStarted == entered: the dominant stage's
    // residency is all service, with no batching or queueing blame.
    const std::vector<RequestTrace> traces{
        syntheticTrace({{0, 100}, {3, 400}})};
    const TailAttribution a = attributeTail(traces);
    EXPECT_EQ(a.stage, 3);
    EXPECT_DOUBLE_EQ(a.batchStallShare, 0.0);
    EXPECT_DOUBLE_EQ(a.queueShare, 0.0);
    EXPECT_DOUBLE_EQ(a.serviceShare, 1.0);
}

TEST(TailAttribution, MarkDispatchSplitsTheDominantStageByCause)
{
    // One hop of 400 ticks on stage 3, split by markDispatch into
    // 100 batch-formation stall + 150 worker queueing + 150 service.
    RequestTrace t = syntheticTrace({{0, 100}, {3, 400}});
    t.hops[1].dispatched = t.hops[1].entered + 100;
    t.hops[1].serviceStarted = t.hops[1].entered + 250;
    const TailAttribution a = attributeTail({t});
    EXPECT_EQ(a.stage, 3);
    EXPECT_DOUBLE_EQ(a.batchStallShare, 100.0 / 400.0);
    EXPECT_DOUBLE_EQ(a.queueShare, 150.0 / 400.0);
    EXPECT_DOUBLE_EQ(a.serviceShare, 150.0 / 400.0);
    // The causes partition the stage's residency exactly.
    EXPECT_DOUBLE_EQ(
        a.batchStallShare + a.queueShare + a.serviceShare, 1.0);
}

TEST(TailAttribution, CauseSharesAggregateOnlyTheDominantStage)
{
    // Two traces: stage 3 dominates (600 of 800). Its split sums the
    // two hops' causes (stall 100+300, queue 50+0, service 100+50);
    // stage 0's pure-service hops must not dilute the shares.
    RequestTrace t1 = syntheticTrace({{0, 100}, {3, 250}});
    t1.hops[1].dispatched = t1.hops[1].entered + 100;
    t1.hops[1].serviceStarted = t1.hops[1].entered + 150;
    RequestTrace t2 = syntheticTrace({{0, 100}, {3, 350}});
    t2.hops[1].dispatched = t2.hops[1].entered + 300;
    t2.hops[1].serviceStarted = t2.hops[1].entered + 300;
    const TailAttribution a = attributeTail({t1, t2});
    EXPECT_EQ(a.stage, 3);
    EXPECT_DOUBLE_EQ(a.batchStallShare, 400.0 / 600.0);
    EXPECT_DOUBLE_EQ(a.queueShare, 50.0 / 600.0);
    EXPECT_DOUBLE_EQ(a.serviceShare, 150.0 / 600.0);
}

TEST(TraceHop, CauseIntervalsClampInsteadOfUnderflowing)
{
    // A hop whose dispatch marks were never set beyond entry (or
    // were set inconsistently) must clamp each interval at zero
    // rather than wrap the unsigned tick arithmetic.
    TraceHop hop;
    hop.entered = 1000;
    hop.dispatched = 900;       // before entry: stall clamps to 0
    hop.serviceStarted = 800;   // before dispatch: wait clamps to 0
    hop.exited = 700;           // before service: service clamps to 0
    EXPECT_EQ(hop.batchStall(), 0u);
    EXPECT_EQ(hop.queueWait(), 0u);
    EXPECT_EQ(hop.serviceTime(), 0u);
}

TEST(TraceHop, DefaultAdmissionMarkNeverUnderflowsBatchStall)
{
    // A default-constructed hop carries admitted == 0; the batch
    // stall must measure from entry, not wrap on (dispatched -
    // admitted), and the backpressure interval clamps to zero.
    TraceHop hop;
    hop.entered = 1000;
    hop.admitted = 0;
    hop.dispatched = 1100;
    hop.serviceStarted = 1100;
    hop.exited = 1200;
    EXPECT_EQ(hop.backpressureStall(), 0u);
    EXPECT_EQ(hop.batchStall(), 100u);
    EXPECT_EQ(hop.serviceTime(), 100u);
}

TEST(TailAttribution, BackpressureIsADistinctCauseBucket)
{
    // One stage-3 hop of 400 ticks: 120 parked behind a full ring,
    // 80 waiting for the batch to form, 50 queued for the worker and
    // 150 in service. The four buckets partition the residency.
    RequestTrace t = syntheticTrace({{0, 100}, {3, 400}});
    t.hops[1].admitted = t.hops[1].entered + 120;
    t.hops[1].dispatched = t.hops[1].entered + 200;
    t.hops[1].serviceStarted = t.hops[1].entered + 250;
    const TailAttribution a = attributeTail({t});
    EXPECT_EQ(a.stage, 3);
    EXPECT_DOUBLE_EQ(a.backpressureShare, 120.0 / 400.0);
    EXPECT_DOUBLE_EQ(a.batchStallShare, 80.0 / 400.0);
    EXPECT_DOUBLE_EQ(a.queueShare, 50.0 / 400.0);
    EXPECT_DOUBLE_EQ(a.serviceShare, 150.0 / 400.0);
    EXPECT_DOUBLE_EQ(a.backpressureShare + a.batchStallShare +
                         a.queueShare + a.serviceShare,
                     1.0);
}

// --- Ring-full / upstream-residency correlation -----------------

TEST(BackpressureCorrelation, EmptyInputsCorrelateNothing)
{
    const std::vector<hw::RingFullSpan> spans{{1000, 1500}};
    const BackpressureCorrelation no_traces =
        correlateRingFull({}, spans, 3);
    EXPECT_EQ(no_traces.ringStage, 3);
    EXPECT_EQ(no_traces.ringFullTicks, 500u);
    EXPECT_EQ(no_traces.stage, -1);
    EXPECT_DOUBLE_EQ(no_traces.share, 0.0);

    const std::vector<RequestTrace> traces{
        syntheticTrace({{2, 400}})};
    const BackpressureCorrelation no_spans =
        correlateRingFull(traces, {}, 3);
    EXPECT_EQ(no_spans.ringFullTicks, 0u);
    EXPECT_EQ(no_spans.stage, -1);
}

TEST(BackpressureCorrelation, OverlapExcludesTheRingStageItself)
{
    // Hops back-to-back from tick 1000: stage 0 [1000,1100), stage 2
    // [1100,1250), stage 3 [1250,1600). The ring was full over
    // [1100,1300): stage 2's 150 ticks sit entirely inside, stage 0
    // misses it, and stage 3 — the ring's own stage — is excluded
    // even though it overlaps by 50.
    const std::vector<RequestTrace> traces{
        syntheticTrace({{0, 100}, {2, 150}, {3, 350}})};
    const std::vector<hw::RingFullSpan> spans{{1100, 1300}};
    const BackpressureCorrelation c =
        correlateRingFull(traces, spans, 3);
    EXPECT_EQ(c.ringStage, 3);
    EXPECT_EQ(c.ringFullTicks, 200u);
    EXPECT_EQ(c.stage, 2);
    EXPECT_DOUBLE_EQ(c.share, 1.0);
    ASSERT_EQ(c.overlapShare.size(), 3u);
    EXPECT_DOUBLE_EQ(c.overlapShare[0], 0.0);
    EXPECT_DOUBLE_EQ(c.overlapShare[2], 1.0);
}

TEST(BackpressureCorrelation, WinnerIsPickedByOverlappedTicks)
{
    // Stage 1 overlaps the spans by 200 of its 400 ticks; stage 2 by
    // 150 of 150. The dominant cause is the larger absolute overlap
    // (stage 1), not the larger fraction — a stage with trivial
    // residency should not win on a perfect ratio.
    const std::vector<RequestTrace> traces{
        syntheticTrace({{1, 400}, {2, 150}})};
    const std::vector<hw::RingFullSpan> spans{{1200, 1550}};
    const BackpressureCorrelation c =
        correlateRingFull(traces, spans, 3);
    EXPECT_EQ(c.stage, 1);
    EXPECT_DOUBLE_EQ(c.share, 0.5);
    ASSERT_EQ(c.overlapShare.size(), 3u);
    EXPECT_DOUBLE_EQ(c.overlapShare[2], 1.0);
}

TEST(BackpressureCorrelation, DisjointSpansAccumulatePerHop)
{
    // One stage-2 hop [1000,1400) against two disjoint full spans:
    // [900,1100) contributes 100, [1300,1500) contributes another
    // 100 — overlap sums across spans within a single hop.
    const std::vector<RequestTrace> traces{
        syntheticTrace({{2, 400}})};
    const std::vector<hw::RingFullSpan> spans{{900, 1100},
                                              {1300, 1500}};
    const BackpressureCorrelation c =
        correlateRingFull(traces, spans, 3);
    EXPECT_EQ(c.ringFullTicks, 400u);
    EXPECT_EQ(c.stage, 2);
    EXPECT_DOUBLE_EQ(c.share, 0.5);
}

// --- Recorder slot reclamation across windows -------------------

TEST(Pipeline, TracedWindowsReclaimEveryRecorderSlot)
{
    // Two traced measurement windows, then let the pipeline empty:
    // every begun trace must have been completed or discarded (stale
    // drops, drained batch members, swallowed completions), so the
    // pool's free list holds every slot again.
    auto bed = makeBed("micro_udp_1024", hw::Platform::HostCpu);
    bed.enableTracing(4);
    const auto m1 = bed.measure(20.0, sim::msToTicks(1.0),
                                sim::msToTicks(2.0));
    const auto m2 = bed.measure(20.0, sim::msToTicks(1.0),
                                sim::msToTicks(2.0));
    bed.sim().runAll();

    const TraceRecorder *rec = bed.tracer();
    ASSERT_NE(rec, nullptr);
    EXPECT_GT(rec->begun(), 0u);
    EXPECT_GT(rec->poolSize(), 0u);
    EXPECT_EQ(rec->freeCount(), rec->poolSize());

    // And the kept timelines are fully closed — no half-open hops.
    for (const Measurement *m : {&m1, &m2}) {
        ASSERT_FALSE(m->slowestTraces.empty());
        for (const RequestTrace &t : m->slowestTraces) {
            EXPECT_GT(t.completedAt, t.createdAt);
            for (std::uint8_t i = 0; i < t.hopCount; ++i) {
                const TraceHop &hop = t.hops[i];
                EXPECT_LE(hop.entered, hop.exited);
                EXPECT_EQ(hop.backpressureStall() + hop.batchStall() +
                              hop.queueWait() + hop.serviceTime(),
                          hop.residency());
            }
        }
    }
}
