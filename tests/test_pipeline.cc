/**
 * @file
 * Tests for the stage pipeline: per-stage stats, the data-plane
 * bypass, accelerator residency, and window isolation.
 */

#include <gtest/gtest.h>

#include "core/testbed.hh"

using namespace snic;
using namespace snic::core;

namespace {

Testbed
makeBed(const char *id, hw::Platform p, std::uint64_t seed = 1)
{
    TestbedConfig cfg;
    cfg.workloadId = id;
    cfg.platform = p;
    cfg.seed = seed;
    return Testbed(cfg);
}

const StageSnapshot &
stageNamed(const Measurement &m, const char *name)
{
    for (const auto &s : m.stageStats) {
        if (s.name == name)
            return s;
    }
    ADD_FAILURE() << "no stage named " << name;
    static const StageSnapshot none;
    return none;
}

} // anonymous namespace

TEST(Pipeline, RequestsFlowThroughAllFiveStages)
{
    auto bed = makeBed("micro_udp_1024", hw::Platform::HostCpu);
    const auto m = bed.measure(5.0, sim::msToTicks(1.0),
                               sim::msToTicks(10.0));
    ASSERT_EQ(m.stageStats.size(), 5u);
    EXPECT_EQ(m.stageStats[0].name, "ingress");
    EXPECT_EQ(m.stageStats[1].name, "stack");
    EXPECT_EQ(m.stageStats[2].name, "app");
    EXPECT_EQ(m.stageStats[3].name, "accelerator");
    EXPECT_EQ(m.stageStats[4].name, "egress");

    const auto &ingress = stageNamed(m, "ingress");
    EXPECT_GT(ingress.accepted, 1000u);
    // Synchronous stages forward everything they accept; the app
    // stage may hold a few requests in the CPU queue at window end.
    EXPECT_EQ(ingress.forwarded, ingress.accepted);
    const auto &app = stageNamed(m, "app");
    EXPECT_EQ(app.accepted, ingress.accepted);
    EXPECT_LE(app.forwarded, app.accepted);
    EXPECT_GE(app.forwarded + app.inFlight, app.accepted);
    const auto &egress = stageNamed(m, "egress");
    EXPECT_GT(egress.accepted, 1000u);
    EXPECT_LE(egress.accepted, ingress.accepted);
}

TEST(Pipeline, AppResidencyCoversQueueingPlusService)
{
    auto bed = makeBed("micro_udp_1024", hw::Platform::HostCpu);
    const auto light = bed.measure(2.0, sim::msToTicks(1.0),
                                   sim::msToTicks(5.0));
    const auto heavy = bed.measure(24.0, sim::msToTicks(1.0),
                                   sim::msToTicks(5.0));
    const auto &light_app = stageNamed(light, "app");
    const auto &heavy_app = stageNamed(heavy, "app");
    EXPECT_GT(light_app.meanResidencyUs, 0.0);
    // Near capacity the CPU queue grows, so residency must too.
    EXPECT_GT(heavy_app.meanResidencyUs,
              light_app.meanResidencyUs * 1.5);
}

TEST(Pipeline, DataPlaneOffloadSkipsStackWork)
{
    // OvS data-plane offload forwards in the eSwitch: the stack
    // stage charges no rx/tx work, so a megaflow hit costs the SNIC
    // CPU only the tiny statistics residual — orders of magnitude
    // below a stack-driven workload on the same cores.
    auto ovs = makeBed("ovs_100", hw::Platform::SnicCpu);
    const auto mo = ovs.measure(10.0, sim::msToTicks(1.0),
                                sim::msToTicks(10.0));
    auto udp = makeBed("micro_udp_1024", hw::Platform::SnicCpu);
    const auto mu = udp.measure(2.0, sim::msToTicks(1.0),
                                sim::msToTicks(10.0));
    const auto &ovs_app = stageNamed(mo, "app");
    const auto &udp_app = stageNamed(mu, "app");
    EXPECT_GT(stageNamed(mo, "ingress").accepted, 1000u);
    EXPECT_GT(ovs_app.meanResidencyUs, 0.0);
    EXPECT_LT(ovs_app.meanResidencyUs, udp_app.meanResidencyUs / 4);
}

TEST(Pipeline, AcceleratorResidencyOnlyOnAccelPlatform)
{
    auto host = makeBed("rem_exe_mtu", hw::Platform::HostCpu);
    const auto mh = host.measure(10.0, sim::msToTicks(1.0),
                                 sim::msToTicks(5.0));
    EXPECT_EQ(stageNamed(mh, "accelerator").meanResidencyUs, 0.0);

    auto accel = makeBed("rem_exe_mtu", hw::Platform::SnicAccel);
    const auto ma = accel.measure(10.0, sim::msToTicks(1.0),
                                  sim::msToTicks(5.0));
    EXPECT_GT(stageNamed(ma, "accelerator").meanResidencyUs, 0.0);
}

TEST(Pipeline, StatsResetBetweenWindows)
{
    auto bed = makeBed("micro_udp_1024", hw::Platform::HostCpu);
    const auto first = bed.measure(5.0, sim::msToTicks(1.0),
                                   sim::msToTicks(10.0));
    const auto second = bed.measure(5.0, sim::msToTicks(1.0),
                                    sim::msToTicks(10.0));
    const auto a = stageNamed(first, "ingress").accepted;
    const auto b = stageNamed(second, "ingress").accepted;
    // Same rate, same window: similar counts — not cumulative.
    EXPECT_NEAR(static_cast<double>(b), static_cast<double>(a),
                0.2 * static_cast<double>(a));
}

TEST(Pipeline, ClosedLoopJobsTraverseThePipeline)
{
    auto bed = makeBed("fio_read", hw::Platform::HostCpu);
    const auto m = bed.measureClosedLoop(4, sim::msToTicks(1.0),
                                         sim::msToTicks(10.0));
    const auto &egress = stageNamed(m, "egress");
    EXPECT_GT(egress.accepted, 100u);
    EXPECT_EQ(stageNamed(m, "ingress").dropped, 0u);
}

TEST(Pipeline, StageLookupByName)
{
    auto bed = makeBed("micro_udp_1024", hw::Platform::HostCpu);
    ASSERT_NE(bed.pipeline().stage("app"), nullptr);
    EXPECT_EQ(bed.pipeline().stage("app")->name(), "app");
    EXPECT_EQ(bed.pipeline().stage("nonesuch"), nullptr);
}
