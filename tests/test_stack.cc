/**
 * @file
 * Tests for the networking-stack cost models, including the KO1
 * cross-platform sanity properties.
 */

#include <gtest/gtest.h>

#include "hw/cpu_platform.hh"
#include "stack/dpdk_stack.hh"
#include "stack/rdma_stack.hh"
#include "stack/stack_model.hh"
#include "stack/tcp_stack.hh"
#include "stack/udp_stack.hh"
#include "stack/xdp_stack.hh"

using namespace snic;
using namespace snic::stack;
using snic::alg::WorkCounters;

namespace {

double
rxNsOn(const StackModel &stack, const hw::CostModel &cpu,
       std::uint32_t bytes)
{
    return cpu.serviceNs(stack.rxWork(bytes));
}

} // anonymous namespace

TEST(Stacks, FactoryProducesAllKinds)
{
    for (StackKind k : {StackKind::Udp, StackKind::Tcp, StackKind::Dpdk,
                        StackKind::Rdma, StackKind::Xdp}) {
        auto s = makeStack(k);
        ASSERT_NE(s, nullptr);
        EXPECT_STREQ(s->name(), stackName(k));
    }
}

TEST(Stacks, CostOrderingTcpHeaviestDpdkLightest)
{
    const auto host = hw::hostCostModel();
    TcpStack tcp;
    UdpStack udp;
    DpdkStack dpdk;
    RdmaStack rdma(RdmaOp::TwoSided);
    const double tcp_ns = rxNsOn(tcp, host, 1024);
    const double udp_ns = rxNsOn(udp, host, 1024);
    const double dpdk_ns = rxNsOn(dpdk, host, 1024);
    const double rdma_ns = rxNsOn(rdma, host, 1024);
    EXPECT_GT(tcp_ns, udp_ns);
    EXPECT_GT(udp_ns, rdma_ns);
    EXPECT_GT(rdma_ns, dpdk_ns);
}

TEST(Stacks, Ko1UdpRatioMatchesPaper)
{
    // The SNIC CPU delivers 76.5-85.7% lower UDP throughput: the
    // per-packet cost ratio must sit in roughly [4.2, 7].
    const auto host = hw::hostCostModel();
    const auto snic = hw::snicCpuCostModel();
    UdpStack udp;
    for (std::uint32_t bytes : {64u, 1024u}) {
        const double ratio =
            rxNsOn(udp, snic, bytes) / rxNsOn(udp, host, bytes);
        EXPECT_GE(ratio, 4.0) << bytes;
        EXPECT_LE(ratio, 7.5) << bytes;
    }
}

TEST(Stacks, DpdkSingleCoreReachesLineRateFor1KbOnly)
{
    // Sec. 3.3: one core (either platform) sustains 100 Gbps with
    // 1 KB packets; nobody sustains it with 64 B packets.
    const double budget_1kb_ns = 1024.0 * 8.0 / 100.0;  // 81.9 ns
    const double budget_64b_ns = 64.0 * 8.0 / 100.0;    // 5.1 ns
    DpdkStack dpdk;
    const auto host = hw::hostCostModel();
    const auto snic = hw::snicCpuCostModel();
    EXPECT_LT(rxNsOn(dpdk, host, 1024), budget_1kb_ns);
    EXPECT_LT(rxNsOn(dpdk, snic, 1024), budget_1kb_ns);
    EXPECT_GT(rxNsOn(dpdk, host, 64), budget_64b_ns);
    EXPECT_GT(rxNsOn(dpdk, snic, 64), budget_64b_ns);
}

TEST(Stacks, RdmaOneSidedCostsNoCpu)
{
    RdmaStack one(RdmaOp::OneSided);
    const auto w = one.rxWork(1024);
    EXPECT_EQ(w.kernelOps, 0u);
    EXPECT_EQ(w.branchyOps, 0u);
    EXPECT_EQ(w.streamBytes, 0u);
    RdmaStack two(RdmaOp::TwoSided);
    EXPECT_GT(two.rxWork(1024).branchyOps, 0u);
}

TEST(Stacks, RdmaSnicPathShorterThanHost)
{
    RdmaStack rdma;
    EXPECT_LT(rdma.fixedLatency(hw::Platform::SnicCpu),
              rdma.fixedLatency(hw::Platform::HostCpu));
}

TEST(Stacks, OnlyDpdkBusyPolls)
{
    EXPECT_TRUE(DpdkStack().busyPolling());
    EXPECT_FALSE(UdpStack().busyPolling());
    EXPECT_FALSE(TcpStack().busyPolling());
    EXPECT_FALSE(RdmaStack().busyPolling());
}

TEST(Stacks, XdpPassThroughStacksProgramOnKernelPath)
{
    // The XDP tier's kernel path IS the UDP path: rx/tx work and
    // fixed latency are bitwise the UdpStack's, with the program
    // cost priced separately (NIC-side) so the Pass verdict charges
    // it once, not twice.
    XdpStack xdp;
    UdpStack udp;
    for (std::uint32_t bytes : {64u, 1024u}) {
        EXPECT_EQ(xdp.rxWork(bytes).kernelOps, udp.rxWork(bytes).kernelOps);
        EXPECT_EQ(xdp.rxWork(bytes).streamBytes,
                  udp.rxWork(bytes).streamBytes);
        EXPECT_EQ(xdp.txWork(bytes).kernelOps, udp.txWork(bytes).kernelOps);
    }
    EXPECT_EQ(xdp.fixedLatency(hw::Platform::HostCpu),
              udp.fixedLatency(hw::Platform::HostCpu));
    EXPECT_FALSE(xdp.busyPolling());

    // The program itself is cheap relative to one kernel crossing —
    // that gap is the whole point of the early-drop tier.
    const auto snic = hw::snicCpuCostModel();
    const double program_ns = snic.serviceNs(xdp.programWork());
    const double kernel_ns =
        hw::hostCostModel().serviceNs(udp.rxWork(64));
    EXPECT_GT(program_ns, 0.0);
    EXPECT_LT(program_ns, kernel_ns / 2.0);

    // Serving a cached value from the NIC scales with the value size
    // and never touches a kernel op.
    const auto serve = xdp.nicServeWork(64);
    EXPECT_EQ(serve.kernelOps, 0u);
    EXPECT_GT(xdp.nicServeWork(1024).streamBytes, serve.streamBytes);
}

TEST(Stacks, TcpConnectionWorkIsExpensiveAndAmortizable)
{
    const auto setup = TcpStack::connectionSetupWork();
    const auto teardown = TcpStack::connectionTeardownWork();
    const auto per_packet = TcpStack().rxWork(1024);
    // One handshake costs several packets' worth of kernel work —
    // AccelTCP's premise.
    EXPECT_GT(setup.kernelOps, 3 * per_packet.kernelOps);
    EXPECT_GT(teardown.kernelOps, per_packet.kernelOps);
    // And it hurts the SNIC CPU ~6x as much (KO1's mechanism).
    const double host = hw::hostCostModel().serviceNs(setup);
    const double snic = hw::snicCpuCostModel().serviceNs(setup);
    EXPECT_GT(snic, host * 4.0);
}

TEST(Stacks, KernelStacksCopyPayload)
{
    UdpStack udp;
    TcpStack tcp;
    DpdkStack dpdk;
    EXPECT_EQ(udp.rxWork(1024).streamBytes, 1024u);
    EXPECT_EQ(tcp.rxWork(1024).streamBytes, 1024u);
    EXPECT_EQ(dpdk.rxWork(1024).streamBytes, 0u);  // zero-copy
}
