/**
 * @file
 * Unit tests for the Table formatter.
 */

#include <gtest/gtest.h>

#include "stats/summary.hh"

using snic::stats::Table;

TEST(Table, RendersTitleHeaderAndRows)
{
    Table t("Demo");
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("== Demo =="), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("beta"), std::string::npos);
}

TEST(Table, CsvIsCommaSeparated)
{
    Table t("Demo");
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.renderCsv(), "a,b\n1,2\n");
}

TEST(Table, NumberFormatters)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::ratio(1.834, 2), "1.83x");
    EXPECT_EQ(Table::percent(12.34, 1), "12.3%");
}

TEST(Table, ColumnsAlign)
{
    Table t("Align");
    t.setHeader({"x", "longheader"});
    t.addRow({"verylongcell", "1"});
    std::string out = t.render();
    // Header row should be padded at least as wide as the longest cell.
    auto header_pos = out.find("x ");
    ASSERT_NE(header_pos, std::string::npos);
}
