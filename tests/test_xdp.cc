/**
 * @file
 * Tests for the XDP/AF_XDP stack tier: the FrontCache's emergent hit
 * ratio (unit and through the assembled testbed), the structural
 * inertness of the verdict hook under non-XDP stacks (bitwise A/B),
 * the intentional/stale drop split, the in-NIC serve bypass, and the
 * drop-after-exit guard.
 */

#include <gtest/gtest.h>

#include <memory>

#include "alg/kv/front_cache.hh"
#include "core/testbed.hh"
#include "net/tor_switch.hh"
#include "stack/udp_stack.hh"
#include "workloads/nicache.hh"

using namespace snic;
using namespace snic::core;

namespace {

/** Keyspace/capacity shared by the cache-convergence tests. */
constexpr std::uint64_t kKeys = workloads::NicacheGet::records;
constexpr std::size_t kCap = kKeys / 10;

const StageSnapshot &
stageNamed(const Measurement &m, const std::string &name)
{
    for (const StageSnapshot &s : m.stageStats)
        if (s.name == name)
            return s;
    static StageSnapshot none;
    return none;
}

/** Install a demand-fill FrontCache verdict hook on @p tc. The hook
 *  owns its RNG (seeded off the config) so it never perturbs the
 *  simulation stream. */
std::shared_ptr<alg::kv::FrontCache>
installCacheHook(TestbedConfig &tc, double skew)
{
    auto cache = std::make_shared<alg::kv::FrontCache>(kCap);
    auto rng = std::make_shared<sim::Random>(tc.seed + 1234567);
    tc.xdpVerdict = [cache, rng, skew](const net::Packet &pkt) {
        const std::uint64_t key =
            net::hotKeyCollapse(pkt.flowHash, kKeys, skew, *rng);
        XdpOutcome out;
        if (const auto hit = cache->lookup(key)) {
            out.verdict = XdpVerdict::NicServe;
            out.responseBytes = 8 + *hit;
        } else {
            // Miss: XDP_PASS into the host KVS; the NIC map is
            // demand-filled with the value the host will serve.
            cache->insert(
                key, static_cast<std::uint32_t>(
                         workloads::NicacheGet::valueBytes));
        }
        return out;
    };
    return cache;
}

} // anonymous namespace

// --- FrontCache unit behaviour ---

TEST(FrontCacheUnit, LruEvictsColdestAndRefreshesOnHit)
{
    alg::kv::FrontCache cache(2);
    EXPECT_FALSE(cache.lookup(1).has_value());
    cache.insert(1, 64);
    cache.insert(2, 128);
    EXPECT_EQ(cache.size(), 2u);

    // Touch 1 so 2 becomes the LRU victim.
    ASSERT_TRUE(cache.lookup(1).has_value());
    EXPECT_EQ(*cache.lookup(1), 64u);
    cache.insert(3, 32);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_FALSE(cache.lookup(2).has_value());
    EXPECT_TRUE(cache.lookup(1).has_value());
    EXPECT_TRUE(cache.lookup(3).has_value());

    // Re-inserting an existing key refreshes, never grows.
    cache.insert(1, 64);
    EXPECT_EQ(cache.size(), 2u);

    // Stats reset forgets counters, keeps contents.
    cache.resetStats();
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(FrontCacheUnit, ZeroCapacityCacheNeverHits)
{
    alg::kv::FrontCache cache(0);
    cache.insert(1, 64);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.lookup(1).has_value());
}

TEST(FrontCacheUnit, UniformPopularityConvergesToCapacityFraction)
{
    // No skew: the steady-state LRU hit ratio is just the chance the
    // drawn key is one of the C most recent distinct keys — C/K.
    alg::kv::FrontCache cache(kCap);
    sim::Random rng(42);
    auto drive = [&](int draws) {
        for (int i = 0; i < draws; ++i) {
            const std::uint64_t key =
                net::hotKeyCollapse(rng.next(), kKeys, 0.0, rng);
            if (!cache.lookup(key))
                cache.insert(key, 64);
        }
    };
    drive(50000);  // fill to steady state
    ASSERT_EQ(cache.size(), kCap);
    cache.resetStats();
    drive(200000);
    EXPECT_NEAR(cache.hitRatio(),
                static_cast<double>(kCap) / kKeys, 0.01);
}

TEST(FrontCacheUnit, HotKeySkewLiftsHitRatioAnalytically)
{
    // Skew h collapses a fraction h of draws onto key 0 (always
    // cached): hit ≈ h + (1-h) * C/K.
    const double skew = 0.5;
    alg::kv::FrontCache cache(kCap);
    sim::Random rng(43);
    auto drive = [&](int draws) {
        for (int i = 0; i < draws; ++i) {
            const std::uint64_t key =
                net::hotKeyCollapse(rng.next(), kKeys, skew, rng);
            if (!cache.lookup(key))
                cache.insert(key, 64);
        }
    };
    drive(50000);
    cache.resetStats();
    drive(200000);
    const double expect =
        skew + (1.0 - skew) * static_cast<double>(kCap) / kKeys;
    EXPECT_NEAR(cache.hitRatio(), expect, 0.02);
}

// --- The XDP tier through the assembled testbed ---

TEST(XdpTier, HitRatioEmergesFromKeyPopularity)
{
    // Nothing configures a hit ratio anywhere: drive the nicache
    // workload through the full testbed and check the NIC cache
    // converges to the analytic value for its key-popularity stream.
    TestbedConfig tc;
    tc.workloadId = "nicache_get";
    tc.seed = 11;
    const double skew = 0.5;
    auto cache = installCacheHook(tc, skew);

    Testbed bed(tc);
    // First window warms the cache to steady state.
    bed.measure(0.5, sim::msToTicks(1.0), sim::msToTicks(10.0));
    ASSERT_EQ(cache->size(), kCap);
    cache->resetStats();
    const Measurement m =
        bed.measure(0.5, sim::msToTicks(1.0), sim::msToTicks(10.0));

    ASSERT_GT(m.completed, 1000u);
    const double expect =
        skew + (1.0 - skew) * static_cast<double>(kCap) / kKeys;
    EXPECT_NEAR(cache->hitRatio(), expect, 0.03);

    // Hits bypass the host path: the app stage saw only the misses.
    const auto &stack_st = stageNamed(m, "stack");
    const auto &app_st = stageNamed(m, "app");
    EXPECT_GT(stack_st.accepted, 0u);
    EXPECT_LT(app_st.accepted, stack_st.accepted);
    EXPECT_GT(app_st.accepted, 0u);
}

TEST(XdpTier, UniformPopularityHitsCapacityFractionThroughTestbed)
{
    TestbedConfig tc;
    tc.workloadId = "nicache_get";
    tc.seed = 12;
    auto cache = installCacheHook(tc, 0.0);

    Testbed bed(tc);
    bed.measure(0.5, sim::msToTicks(1.0), sim::msToTicks(15.0));
    ASSERT_EQ(cache->size(), kCap);
    cache->resetStats();
    bed.measure(0.5, sim::msToTicks(1.0), sim::msToTicks(15.0));
    EXPECT_NEAR(cache->hitRatio(),
                static_cast<double>(kCap) / kKeys, 0.03);
}

TEST(XdpTier, HookIsStructurallyInertUnderNonXdpStacks)
{
    // A poisoned verdict hook (would drop everything) installed under
    // the plain UDP stack must never be consulted, and the run must
    // be bitwise identical to the same seed without it.
    auto run = [](bool poisoned, std::uint64_t *calls) {
        TestbedConfig tc;
        tc.workloadId = "micro_udp_1024";
        tc.seed = 5;
        if (poisoned) {
            tc.xdpVerdict = [calls](const net::Packet &) {
                ++*calls;
                return XdpOutcome{XdpVerdict::Drop, 0};
            };
        }
        Testbed bed(tc);
        return bed.measure(5.0, sim::msToTicks(1.0),
                           sim::msToTicks(10.0));
    };

    std::uint64_t calls = 0;
    const Measurement a = run(false, nullptr);
    const Measurement b = run(true, &calls);

    EXPECT_EQ(calls, 0u);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.generated, b.generated);
    EXPECT_EQ(a.floodCompleted, b.floodCompleted);
    EXPECT_EQ(a.achievedGbps, b.achievedGbps);
    EXPECT_EQ(a.goodputGbps, b.goodputGbps);
    EXPECT_EQ(a.achievedRps, b.achievedRps);
    EXPECT_EQ(a.latency.count(), b.latency.count());
    EXPECT_EQ(a.latency.min(), b.latency.min());
    EXPECT_EQ(a.latency.max(), b.latency.max());
    EXPECT_EQ(a.latency.p50(), b.latency.p50());
    EXPECT_EQ(a.latency.p99(), b.latency.p99());
    EXPECT_EQ(a.latency.mean(), b.latency.mean());
    EXPECT_EQ(a.energy.avgServerWatts, b.energy.avgServerWatts);
    EXPECT_EQ(a.energy.serverJoules, b.energy.serverJoules);
}

TEST(XdpTier, EarlyDropsAreIntentionalNotStale)
{
    // An always-drop ACL: every packet dies at the stack stage, in
    // the intentional bucket; nothing reaches the app or completes.
    TestbedConfig tc;
    tc.workloadId = "xdp_echo_64";
    tc.seed = 13;
    tc.xdpVerdict = [](const net::Packet &) {
        return XdpOutcome{XdpVerdict::Drop, 0};
    };
    Testbed bed(tc);
    const Measurement m =
        bed.measure(1.0, sim::msToTicks(1.0), sim::msToTicks(5.0));

    EXPECT_EQ(m.completed, 0u);
    const auto &stack_st = stageNamed(m, "stack");
    EXPECT_GT(stack_st.accepted, 0u);
    EXPECT_GT(stack_st.dropped, 0u);
    EXPECT_EQ(stack_st.droppedStale, 0u);
    EXPECT_EQ(stack_st.forwarded, 0u);
    // Flow conservation over the intentional bucket.
    EXPECT_EQ(stack_st.accepted,
              stack_st.dropped + stack_st.inFlight);
    EXPECT_EQ(stageNamed(m, "app").accepted, 0u);
}

TEST(XdpTier, NicServeBypassesHostStackAndApp)
{
    // An always-hit cache: replies are built on the NIC, so the app
    // stage never runs and every request still completes.
    TestbedConfig tc;
    tc.workloadId = "nicache_get";
    tc.seed = 14;
    tc.xdpVerdict = [](const net::Packet &) {
        return XdpOutcome{XdpVerdict::NicServe,
                          workloads::NicacheGet::responseBytes};
    };
    Testbed bed(tc);
    const Measurement m =
        bed.measure(0.5, sim::msToTicks(1.0), sim::msToTicks(5.0));

    ASSERT_GT(m.completed, 0u);
    EXPECT_EQ(stageNamed(m, "app").accepted, 0u);
    const auto &stack_st = stageNamed(m, "stack");
    const auto &egress_st = stageNamed(m, "egress");
    EXPECT_EQ(stack_st.dropped, 0u);
    EXPECT_GT(egress_st.accepted, 0u);
}

TEST(XdpTier, ServedFromNicIsFasterThanHostPath)
{
    // The whole point of the tier: an in-NIC serve dodges the kernel
    // crossing, so always-hit p50 must beat always-miss p50.
    auto runP50 = [](XdpVerdict verdict) {
        TestbedConfig tc;
        tc.workloadId = "nicache_get";
        tc.seed = 15;
        tc.xdpVerdict = [verdict](const net::Packet &) {
            XdpOutcome out;
            out.verdict = verdict;
            if (verdict == XdpVerdict::NicServe)
                out.responseBytes = workloads::NicacheGet::responseBytes;
            return out;
        };
        Testbed bed(tc);
        const Measurement m =
            bed.measure(0.5, sim::msToTicks(1.0), sim::msToTicks(5.0));
        EXPECT_GT(m.completed, 0u);
        return m.p50Us();
    };
    const double hit_p50 = runP50(XdpVerdict::NicServe);
    const double miss_p50 = runP50(XdpVerdict::Pass);
    EXPECT_LT(hit_p50, miss_p50 * 0.5);
}

// --- The drop-after-exit guard ---

namespace {

/** Minimal concrete stage exposing the protected drop entry points. */
class ProbeStage : public Stage
{
  public:
    explicit ProbeStage(PipelineContext &ctx) : Stage(ctx, "probe") {}

    void
    doDropIntent(ReqRef req)
    {
        dropIntent(std::move(req));
    }

  protected:
    void process(ReqRef req) override { forward(std::move(req)); }
};

} // anonymous namespace

TEST(XdpTierDeath, DroppingARequestAfterItLeftTheStageIsFatal)
{
    sim::Simulation sim(1);
    hw::ServerModel server(sim);
    auto wl = workloads::makeWorkload("micro_udp_64");
    sim::Random rng(2);
    wl->setup(rng);
    stack::UdpStack stack;
    std::vector<ChainStageRuntime> chain;
    PipelineContext ctx{sim,
                        server,
                        *wl,
                        stack,
                        server.hostCpu(),
                        hw::Platform::HostCpu,
                        /*epochStart=*/0,
                        /*tracer=*/nullptr,
                        /*liveRequests=*/0,
                        &chain,
                        /*xdpVerdict=*/{}};
    ProbeStage probe(ctx);

    RequestPool *pool = RequestPool::create();
    {
        // Travel the stage once: accept() -> process() -> forward()
        // exits the stage (no next), releasing the record.
        ReqRef a(*pool);
        probe.accept(std::move(a));
    }
    // The recycled record is no longer inside any stage; dropping it
    // now is the exact bug the guard exists for.
    ReqRef b(*pool);
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_EXIT(probe.doDropIntent(std::move(b)),
                ::testing::ExitedWithCode(1), "already left");
    b.reset();
    pool->unref();
}
