/**
 * @file
 * Unit and statistical tests for the RNG and samplers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "sim/random.hh"

using namespace snic::sim;

TEST(Random, SameSeedSameSequence)
{
    Random a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 5);
}

TEST(Random, UniformInUnitInterval)
{
    Random rng(7);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(Random, UniformIntCoversRangeInclusive)
{
    Random rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        std::uint64_t v = rng.uniformInt(3, 7);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 7u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 7);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, ExponentialMeanMatches)
{
    Random rng(11);
    const double mean = 25.0;
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(mean);
    EXPECT_NEAR(sum / n, mean, mean * 0.03);
}

TEST(Random, NormalMomentsMatch)
{
    Random rng(13);
    const int n = 50000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        double v = rng.normal(10.0, 2.0);
        sum += v;
        sum_sq += v * v;
    }
    const double m = sum / n;
    const double var = sum_sq / n - m * m;
    EXPECT_NEAR(m, 10.0, 0.1);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Random, ChanceRespectsProbability)
{
    Random rng(17);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.02);
}

TEST(Random, BoundedParetoStaysInBounds)
{
    Random rng(19);
    for (int i = 0; i < 5000; ++i) {
        double v = rng.boundedPareto(64.0, 1500.0, 1.2);
        ASSERT_GE(v, 64.0 * 0.999);
        ASSERT_LE(v, 1500.0 * 1.001);
    }
}

TEST(Random, DiscretePicksByWeight)
{
    Random rng(23);
    std::vector<double> w{1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        counts[rng.discrete(w)]++;
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.02);
    EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.75, 0.02);
}

TEST(ZipfSampler, SamplesWithinPopulation)
{
    Random rng(29);
    ZipfSampler zipf(1000, 0.99);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(zipf.sample(rng), 1000u);
}

TEST(ZipfSampler, HotKeysDominate)
{
    Random rng(31);
    ZipfSampler zipf(10000, 0.99);
    std::map<std::uint64_t, int> counts;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        counts[zipf.sample(rng)]++;
    // With theta=0.99, the hottest key should capture a few percent of
    // all accesses and the top-10 a large share.
    int top = counts[0];
    EXPECT_GT(top, n / 100);
    int top10 = 0;
    for (std::uint64_t k = 0; k < 10; ++k)
        top10 += counts[k];
    EXPECT_GT(top10, n / 10);
}

TEST(ZipfSampler, LowThetaIsFlatter)
{
    Random rng(37);
    ZipfSampler hot(10000, 0.99), flat(10000, 0.01);
    int hot0 = 0, flat0 = 0;
    for (int i = 0; i < 50000; ++i) {
        hot0 += (hot.sample(rng) == 0);
        flat0 += (flat.sample(rng) == 0);
    }
    EXPECT_GT(hot0, flat0 * 3);
}
