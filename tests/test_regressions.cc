/**
 * @file
 * Regression tests pinning down harness bugs found during
 * calibration, plus coverage for late-added features (operation
 * modes, served-rate series, window sizing).
 */

#include <gtest/gtest.h>

#include "core/testbed.hh"
#include "core/throughput_search.hh"
#include "hw/eswitch.hh"
#include "hw/pcie.hh"
#include "net/link.hh"
#include "net/traffic_gen.hh"

using namespace snic;
using namespace snic::core;

TEST(Regression, TrafficGenRestartDoesNotDoubleRate)
{
    // Bug: each startAtRate() spawned a new emit chain while the old
    // chain's pending event kept emitting — doubling the offered
    // load after every restart.
    sim::Simulation s(3);
    net::Link link(s, "wire", 100.0, 0);
    std::uint64_t bytes = 0;
    link.connect([&](const net::Packet &p) { bytes += p.sizeBytes; });
    net::TrafficGen gen(s, "gen", link, net::SizeDist::fixed(1024),
                        net::Proto::Udp);

    // First run.
    gen.startAtRate(10.0, s.now() + sim::msToTicks(5.0));
    s.runUntil(s.now() + sim::msToTicks(6.0));
    // Restart at the same rate; measure only the second window.
    bytes = 0;
    const sim::Tick t0 = s.now();
    gen.startAtRate(10.0, t0 + sim::msToTicks(10.0));
    s.runUntil(t0 + sim::msToTicks(10.0));
    const double gbps = static_cast<double>(bytes) * 8.0 / 0.010 / 1e9;
    EXPECT_NEAR(gbps, 10.0, 1.0);  // was ~20 with the bug
}

TEST(Regression, CapacityProbeDoesNotPoisonLatencyPoint)
{
    // Bug family: backlog left by the saturating capacity probe
    // (link serialization state, platform queues, in-flight
    // accelerator handoffs) leaked into the next window and inflated
    // p99 by orders of magnitude.
    ExperimentOptions opts;
    opts.targetSamples = 4000;

    TestbedConfig cfg;
    cfg.workloadId = "rem_exe_mtu";
    cfg.platform = hw::Platform::SnicAccel;
    Testbed bed(cfg);
    const Capacity cap = findCapacity(bed, opts);
    const auto after = bed.measure(cap.requestGbps * 0.5,
                                   opts.warmup,
                                   sim::msToTicks(10.0));

    TestbedConfig cfg2 = cfg;
    cfg2.seed = cfg.seed;
    Testbed fresh(cfg2);
    const auto clean = fresh.measure(cap.requestGbps * 0.5,
                                     opts.warmup,
                                     sim::msToTicks(10.0));
    // The reused testbed must behave like a fresh one.
    EXPECT_NEAR(after.p99Us(), clean.p99Us(), clean.p99Us() * 0.15);
}

TEST(Regression, WindowForClampsAndScales)
{
    ExperimentOptions opts;
    opts.targetSamples = 10000;
    // Very fast workload -> clamp to the minimum window.
    EXPECT_EQ(windowFor(1e9, opts), opts.minWindow);
    // Very slow workload -> clamp to the maximum window.
    EXPECT_EQ(windowFor(0.5, opts), opts.maxWindow);
    // In between: targetSamples / rps.
    EXPECT_EQ(windowFor(100000.0, opts), sim::msToTicks(100.0));
}

TEST(OperationModes, OffPathShortensTheSwitchPipeline)
{
    sim::Simulation s;
    hw::PcieLink pcie(s, "pcie", 32.0, 700.0);
    hw::ESwitch sw(s, "esw", pcie);
    sw.setClassifier(
        [](const net::Packet &) { return hw::SteerTarget::SnicCpu; });
    sim::Tick on_path = 0, off_path = 0;
    sw.connectSnicCpu(
        [&](const net::Packet &) { on_path = s.now(); });
    net::Packet pkt;
    pkt.sizeBytes = 1500;
    sw.ingress(pkt);
    s.runAll();
    const sim::Tick t_on = on_path;

    sw.setMode(hw::OperationMode::OffPath);
    sw.connectSnicCpu(
        [&](const net::Packet &) { off_path = s.now(); });
    const sim::Tick before = s.now();
    sw.ingress(pkt);
    s.runAll();
    EXPECT_LT(off_path - before, t_on);  // M2 pipeline is shorter
    EXPECT_EQ(sw.mode(), hw::OperationMode::OffPath);
}

TEST(ReplaySeries, ServedSeriesTracksSchedule)
{
    TestbedConfig cfg;
    cfg.workloadId = "rem_exe_mtu";
    cfg.platform = hw::Platform::HostCpu;
    Testbed bed(cfg);
    const std::vector<double> rates{2.0, 8.0, 2.0};
    const auto m = bed.replaySchedule(rates, sim::msToTicks(4.0));
    ASSERT_EQ(m.servedGbpsSeries.size(), rates.size());
    EXPECT_NEAR(m.servedGbpsSeries[0], 2.0, 0.8);
    EXPECT_NEAR(m.servedGbpsSeries[1], 8.0, 1.6);
    EXPECT_GT(m.servedGbpsSeries[1], m.servedGbpsSeries[0] * 2.0);
}

TEST(ReplaySeries, PlainMeasurementsHaveNoSeries)
{
    TestbedConfig cfg;
    cfg.workloadId = "micro_udp_1024";
    cfg.platform = hw::Platform::HostCpu;
    Testbed bed(cfg);
    const auto m =
        bed.measure(5.0, sim::msToTicks(1.0), sim::msToTicks(5.0));
    EXPECT_TRUE(m.servedGbpsSeries.empty());
}
