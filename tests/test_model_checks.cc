/**
 * @file
 * Reference-model and conservation checks: randomized operation
 * sequences against known-good models, and accounting invariants of
 * the queueing substrate.
 */

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "alg/kv/kv_store.hh"
#include "alg/nat/nat_table.hh"
#include "hw/platform.hh"
#include "net/link.hh"
#include "stats/histogram.hh"
#include "sim/random.hh"

using namespace snic;
using namespace snic::alg;
using snic::sim::Random;

TEST(KvModelCheck, RandomOpsMatchUnorderedMap)
{
    Random rng(2001);
    kv::KvStore store(16);
    std::unordered_map<std::string, std::vector<std::uint8_t>> model;
    WorkCounters w;

    for (int i = 0; i < 20000; ++i) {
        const std::string key =
            "k" + std::to_string(rng.uniformInt(0, 500));
        const int action = static_cast<int>(rng.uniformInt(0, 9));
        if (action < 5) {
            kv::Op op{kv::OpType::Get, key, {}};
            const auto r = store.execute(op, w);
            const auto it = model.find(key);
            ASSERT_EQ(r.hit, it != model.end()) << i;
            if (r.hit) {
                ASSERT_EQ(r.value, it->second) << i;
            }
        } else if (action < 8) {
            std::vector<std::uint8_t> value(rng.uniformInt(1, 64));
            for (auto &b : value)
                b = static_cast<std::uint8_t>(rng.next());
            kv::Op op{kv::OpType::Put, key, value};
            store.execute(op, w);
            model[key] = value;
        } else {
            kv::Op op{kv::OpType::Delete, key, {}};
            const auto r = store.execute(op, w);
            ASSERT_EQ(r.hit, model.erase(key) > 0) << i;
        }
    }
    EXPECT_EQ(store.size(), model.size());
}

TEST(NatModelCheck, RandomLookupsMatchMap)
{
    Random rng(2002);
    nat::NatTable table(64);
    std::map<std::pair<std::uint32_t, std::uint16_t>, nat::Endpoint>
        model;
    WorkCounters w;
    for (int i = 0; i < 4000; ++i) {
        nat::Translation t;
        t.internal = {static_cast<std::uint32_t>(rng.next()),
                      static_cast<std::uint16_t>(rng.next())};
        t.external = {static_cast<std::uint32_t>(rng.next()),
                      static_cast<std::uint16_t>(rng.next())};
        const auto key =
            std::make_pair(t.internal.ip, t.internal.port);
        if (model.count(key))
            continue;  // the simple model has no duplicate handling
        table.insert(t, w);
        model[key] = t.external;
    }
    // Every inserted mapping resolves; random misses do not.
    for (const auto &[key, external] : model) {
        const auto got =
            table.translateOut({key.first, key.second}, w);
        ASSERT_TRUE(got.has_value());
        ASSERT_EQ(got->ip, external.ip);
        ASSERT_EQ(got->port, external.port);
    }
    int false_hits = 0;
    for (int i = 0; i < 2000; ++i) {
        nat::Endpoint probe{static_cast<std::uint32_t>(rng.next()),
                            static_cast<std::uint16_t>(rng.next())};
        if (model.count({probe.ip, probe.port}))
            continue;
        false_hits += table.translateOut(probe, w).has_value();
    }
    EXPECT_EQ(false_hits, 0);
}

TEST(Conservation, PlatformBusyIntegralEqualsServiceSum)
{
    // Work conservation: the busy-time integral must equal the sum
    // of the service times of everything executed.
    sim::Simulation s;
    hw::ExecutionPlatform p(s, "p", 3,
                            hw::CostModel{.perBranchyOp = 1.0});
    Random rng(2003);
    double expected_sec = 0.0;
    for (int i = 0; i < 500; ++i) {
        WorkCounters w;
        w.branchyOps = rng.uniformInt(10, 5000);
        expected_sec += static_cast<double>(w.branchyOps) * 1e-9;
        const sim::Tick when =
            sim::usToTicks(static_cast<double>(rng.uniformInt(0, 500)));
        s.at(when, [&p, w] { p.submit(w, 0, nullptr); });
    }
    s.runAll();
    EXPECT_NEAR(p.busyIntegral(), expected_sec, expected_sec * 1e-9);
    EXPECT_EQ(p.completedCount(), 500u);
}

TEST(Conservation, LinkDeliversEverythingBelowHorizon)
{
    sim::Simulation s;
    net::Link link(s, "wire", 100.0, sim::usToTicks(1.0));
    std::uint64_t delivered_bytes = 0;
    link.connect([&](const net::Packet &pkt) {
        delivered_bytes += pkt.sizeBytes;
    });
    Random rng(2004);
    std::uint64_t sent_bytes = 0;
    for (int i = 0; i < 2000; ++i) {
        net::Packet pkt;
        pkt.sizeBytes =
            static_cast<std::uint32_t>(rng.uniformInt(64, 1500));
        // Paced well under 100 Gbps -> never near the drop horizon.
        const sim::Tick when = sim::usToTicks(static_cast<double>(i));
        s.at(when, [&link, pkt]() mutable { link.send(pkt); });
        sent_bytes += pkt.sizeBytes;
    }
    s.runAll();
    EXPECT_EQ(delivered_bytes, sent_bytes);
    EXPECT_EQ(link.dropped(), 0u);
    EXPECT_EQ(link.delivered(), 2000u);
}

TEST(Conservation, FifoOrderPreservedPerWorker)
{
    sim::Simulation s;
    hw::ExecutionPlatform p(s, "p", 1,
                            hw::CostModel{.perArithOp = 1.0});
    std::vector<int> order;
    Random rng(2005);
    for (int i = 0; i < 100; ++i) {
        WorkCounters w;
        w.arithOps = rng.uniformInt(1, 1000);
        p.submit(w, 0, [&order, i] { order.push_back(i); });
    }
    s.runAll();
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Conservation, WeightedHistogramTotalsMatchStream)
{
    // The histogram must conserve counts under arbitrary interleaving
    // of weighted and unweighted records plus merges.
    Random rng(2006);
    stats::Histogram total, a, b;
    std::uint64_t n = 0;
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t v = rng.uniformInt(0, 1 << 20);
        const std::uint64_t c = rng.uniformInt(1, 5);
        (rng.chance(0.5) ? a : b).record(v, c);
        total.record(v, c);
        n += c;
    }
    a.merge(b);
    EXPECT_EQ(a.count(), n);
    EXPECT_EQ(total.count(), n);
    EXPECT_EQ(a.percentile(0.5), total.percentile(0.5));
}
