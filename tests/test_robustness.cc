/**
 * @file
 * Robustness of the study's conclusions: seed stability of the
 * headline ratios, and dispatch-policy sensitivity of tail latency.
 */

#include <gtest/gtest.h>

#include "core/report.hh"
#include "hw/platform.hh"
#include "stats/histogram.hh"

using namespace snic;
using namespace snic::core;

TEST(Robustness, HeadlineRatiosAreSeedStable)
{
    // The Fig. 4 conclusions must not depend on the RNG seed: rerun
    // two key cells with different seeds and require consistency.
    for (const char *id : {"micro_udp_1024", "rem_exe"}) {
        ExperimentOptions a, b;
        a.targetSamples = b.targetSamples = 4000;
        a.seed = 1;
        b.seed = 99;
        const auto ra = compareOnPlatforms(id, a);
        const auto rb = compareOnPlatforms(id, b);
        EXPECT_NEAR(ra.throughputRatio, rb.throughputRatio,
                    ra.throughputRatio * 0.15)
            << id;
        EXPECT_NEAR(ra.p99Ratio, rb.p99Ratio, ra.p99Ratio * 0.3)
            << id;
    }
}

TEST(Robustness, FlowHashDispatchHasWorseTailsThanLeastLoaded)
{
    // Static RSS pins flows to cores; hash imbalance inflates the
    // tail relative to ideal steering at the same load.
    auto run = [](hw::Dispatch dispatch) {
        sim::Simulation s(5);
        hw::ExecutionPlatform p(s, "p", 8,
                                hw::CostModel{.perBranchyOp = 1.0});
        p.setDispatch(dispatch);
        stats::Histogram latency;
        sim::Random rng(5);
        // Poisson arrivals at ~70 % load of 8 workers.
        sim::Tick t = 0;
        for (int i = 0; i < 30000; ++i) {
            t += static_cast<sim::Tick>(
                rng.exponential(1800.0) * 1e3);
            const std::uint64_t flow = rng.next();
            s.at(t, [&p, &latency, &s, flow] {
                alg::WorkCounters w;
                w.branchyOps = 10000;  // 10 us service
                const sim::Tick start = s.now();
                p.submit(w, flow, [&latency, &s, start] {
                    latency.record(s.now() - start);
                });
            });
        }
        s.runAll();
        return sim::ticksToUs(latency.p99());
    };
    const double ideal = run(hw::Dispatch::LeastLoaded);
    const double rss = run(hw::Dispatch::FlowHash);
    EXPECT_GT(rss, ideal * 1.5);
}

TEST(Robustness, LoadFactorMonotonicity)
{
    // p99 at the measurement point must grow with the load factor —
    // the knee behaviour every figure depends on.
    double prev = 0.0;
    for (double lf : {0.4, 0.7, 0.9}) {
        ExperimentOptions opts;
        opts.targetSamples = 4000;
        opts.loadFactor = lf;
        const auto r = runExperiment("micro_udp_1024",
                                     hw::Platform::HostCpu, opts);
        EXPECT_GE(r.p99Us, prev * 0.95) << lf;
        prev = r.p99Us;
    }
}
