/**
 * @file
 * Tests for the hash table and KV store.
 */

#include <gtest/gtest.h>

#include <string>

#include "alg/kv/hash_table.hh"
#include "alg/kv/kv_store.hh"
#include "sim/random.hh"

using namespace snic::alg;
using namespace snic::alg::kv;
using snic::sim::Random;

namespace {

std::vector<std::uint8_t>
val(const std::string &s)
{
    return std::vector<std::uint8_t>(s.begin(), s.end());
}

} // anonymous namespace

TEST(HashTable, PutGetErase)
{
    HashTable t(8);
    WorkCounters work;
    EXPECT_TRUE(t.put("alpha", val("1"), work));
    EXPECT_TRUE(t.put("beta", val("2"), work));
    EXPECT_FALSE(t.put("alpha", val("3"), work));  // replace
    ASSERT_NE(t.get("alpha", work), nullptr);
    EXPECT_EQ(*t.get("alpha", work), val("3"));
    EXPECT_EQ(t.get("missing", work), nullptr);
    EXPECT_TRUE(t.erase("alpha", work));
    EXPECT_FALSE(t.erase("alpha", work));
    EXPECT_EQ(t.get("alpha", work), nullptr);
    EXPECT_EQ(t.size(), 1u);
}

TEST(HashTable, ResizesUnderLoad)
{
    HashTable t(4);
    WorkCounters work;
    for (int i = 0; i < 1000; ++i)
        t.put("key" + std::to_string(i), val("v"), work);
    EXPECT_EQ(t.size(), 1000u);
    EXPECT_LE(t.loadFactor(), 0.75);
    // Everything still reachable after resizes.
    for (int i = 0; i < 1000; ++i)
        ASSERT_NE(t.get("key" + std::to_string(i), work), nullptr) << i;
}

TEST(HashTable, MemoryAccounting)
{
    HashTable t;
    WorkCounters work;
    t.put("abc", val("12345"), work);
    EXPECT_EQ(t.memoryBytes(), 8u);
    t.put("abc", val("1"), work);  // replace shrinks
    EXPECT_EQ(t.memoryBytes(), 4u);
    t.erase("abc", work);
    EXPECT_EQ(t.memoryBytes(), 0u);
}

TEST(HashTable, WorkCountsGrowWithChains)
{
    // A 1-bucket table degenerates to a list: probes scale with size.
    HashTable t(1);
    WorkCounters w_fill;
    // Insert without triggering resize checks mattering (loadFactor
    // >0.75 resizes; with 1 bucket it resizes, so use distinct check).
    for (int i = 0; i < 50; ++i)
        t.put("k" + std::to_string(i), val("v"), w_fill);
    WorkCounters w1;
    t.get("k0", w1);
    EXPECT_GE(w1.randomTouches, 1u);
}

TEST(HashTable, VersionsTrackWriters)
{
    HashTable t(8);
    WorkCounters work;
    const auto v0 = t.bucketVersion("alpha");
    EXPECT_EQ(v0 % 2, 0u);  // even: no writer in flight
    t.put("alpha", val("1"), work);
    const auto v1 = t.bucketVersion("alpha");
    EXPECT_GT(v1, v0);
    EXPECT_EQ(v1 % 2, 0u);
    // Reads do not bump versions.
    t.get("alpha", work);
    EXPECT_EQ(t.bucketVersion("alpha"), v1);
    t.erase("alpha", work);
    EXPECT_GT(t.bucketVersion("alpha"), v1);
}

TEST(HashTable, VersionsSurviveResizeMonotonically)
{
    HashTable t(2);
    WorkCounters work;
    t.put("probe", val("x"), work);
    const auto before = t.bucketVersion("probe");
    for (int i = 0; i < 100; ++i)
        t.put("k" + std::to_string(i), val("v"), work);  // resizes
    EXPECT_GE(t.bucketVersion("probe"), before);
    EXPECT_EQ(t.bucketVersion("probe") % 2, 0u);
}

TEST(KvStore, ExecuteOps)
{
    KvStore store;
    WorkCounters work;
    auto r1 = store.execute(Op{OpType::Put, "user1", val("hello")},
                            work);
    EXPECT_TRUE(r1.hit);
    auto r2 = store.execute(Op{OpType::Get, "user1", {}}, work);
    EXPECT_TRUE(r2.hit);
    EXPECT_EQ(r2.value, val("hello"));
    auto r3 = store.execute(Op{OpType::Get, "user2", {}}, work);
    EXPECT_FALSE(r3.hit);
    auto r4 = store.execute(Op{OpType::Delete, "user1", {}}, work);
    EXPECT_TRUE(r4.hit);
    EXPECT_EQ(store.hits(), 1u);
    EXPECT_EQ(store.misses(), 1u);
}

TEST(KvStore, BatchPreservesOrder)
{
    KvStore store;
    WorkCounters work;
    std::vector<Op> ops{
        {OpType::Put, "a", val("1")},
        {OpType::Put, "b", val("2")},
        {OpType::Get, "a", {}},
        {OpType::Get, "zz", {}},
    };
    auto results = store.executeBatch(ops, work);
    ASSERT_EQ(results.size(), 4u);
    EXPECT_TRUE(results[2].hit);
    EXPECT_EQ(results[2].value, val("1"));
    EXPECT_FALSE(results[3].hit);
    EXPECT_EQ(work.messages, 4u);
}

TEST(KvStore, LoadMatchesPaperScale)
{
    // The paper loads 30 K records of 1 KB each for Redis/YCSB.
    KvStore store;
    WorkCounters work;
    Random rng(5);
    store.load(30000, 1024, rng, work);
    EXPECT_EQ(store.size(), 30000u);
    EXPECT_GT(store.memoryBytes(), 30000u * 1024u);
    WorkCounters w;
    EXPECT_NE(store.execute(Op{OpType::Get, KvStore::keyFor(12345), {}},
                            w)
                  .hit,
              false);
}
