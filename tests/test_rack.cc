/**
 * @file
 * Tests for the rack composition (core/rack.hh): the 1-server
 * PassThrough wiring invariant, aggregate-vs-member accounting,
 * dispatch-policy behaviour, and sweep determinism across runner
 * worker counts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/rack.hh"
#include "core/runner.hh"
#include "core/throughput_search.hh"

using namespace snic;
using namespace snic::core;

namespace {

constexpr const char *kWorkload = "micro_udp_1024";

RackConfig
rackConfig(unsigned servers, net::DispatchPolicy policy,
           std::uint64_t seed = 7)
{
    RackConfig cfg;
    cfg.workloadId = kWorkload;
    cfg.platform = hw::Platform::HostCpu;
    cfg.servers = servers;
    cfg.policy = policy;
    cfg.seed = seed;
    return cfg;
}

void
expectBitwiseEqual(const Measurement &a, const Measurement &b)
{
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.generated, b.generated);
    EXPECT_EQ(a.achievedGbps, b.achievedGbps);
    EXPECT_EQ(a.goodputGbps, b.goodputGbps);
    EXPECT_EQ(a.achievedRps, b.achievedRps);
    EXPECT_EQ(a.latency.count(), b.latency.count());
    EXPECT_EQ(a.latency.min(), b.latency.min());
    EXPECT_EQ(a.latency.max(), b.latency.max());
    EXPECT_EQ(a.latency.p50(), b.latency.p50());
    EXPECT_EQ(a.latency.p99(), b.latency.p99());
    EXPECT_EQ(a.latency.mean(), b.latency.mean());
    EXPECT_EQ(a.energy.avgServerWatts, b.energy.avgServerWatts);
    EXPECT_EQ(a.energy.serverJoules, b.energy.serverJoules);
    EXPECT_EQ(a.energy.nicGbps, b.energy.nicGbps);
}

void
expectBitwiseEqual(const RackRunResult &a, const RackRunResult &b)
{
    EXPECT_EQ(a.maxGbps, b.maxGbps);
    EXPECT_EQ(a.maxRps, b.maxRps);
    EXPECT_EQ(a.p99Us, b.p99Us);
    EXPECT_EQ(a.p50Us, b.p50Us);
    EXPECT_EQ(a.meanUs, b.meanUs);
    EXPECT_EQ(a.rackWatts, b.rackWatts);
    EXPECT_EQ(a.imbalance, b.imbalance);
    EXPECT_EQ(a.searchAttempts, b.searchAttempts);
    EXPECT_EQ(a.saturated, b.saturated);
    EXPECT_EQ(a.loadPoint.aggregate.completed,
              b.loadPoint.aggregate.completed);
    EXPECT_EQ(a.loadPoint.aggregate.latency.p99(),
              b.loadPoint.aggregate.latency.p99());
}

} // anonymous namespace

TEST(Rack, OneServerPassThroughIsBitwiseIdenticalToTestbed)
{
    // The wiring invariant everything else rests on: a 1-server
    // PassThrough rack replays the standalone Testbed's exact event
    // sequence — same RNG stream, same link hops, zero dispatch cost
    // — so every measured number matches bitwise, not approximately.
    const sim::Tick warmup = sim::msToTicks(1.0);
    const sim::Tick window = sim::msToTicks(10.0);
    const double gbps = 12.0;

    TestbedConfig tc;
    tc.workloadId = kWorkload;
    tc.platform = hw::Platform::HostCpu;
    tc.seed = 7;
    Testbed bed(tc);
    const Measurement single = bed.measure(gbps, warmup, window);

    Rack rack(rackConfig(1, net::DispatchPolicy::PassThrough));
    const RackMeasurement rm = rack.measure(gbps, warmup, window);

    ASSERT_EQ(rm.perServer.size(), 1u);
    ASSERT_GT(single.completed, 0u);
    expectBitwiseEqual(rm.perServer[0], single);
    // The aggregate of one member is that member.
    expectBitwiseEqual(rm.aggregate, single);
    EXPECT_EQ(rm.imbalance, 1.0);
}

TEST(Rack, AggregateIsSumOfMembers)
{
    Rack rack(rackConfig(3, net::DispatchPolicy::RoundRobin));
    const RackMeasurement rm =
        rack.measure(30.0, sim::msToTicks(1.0), sim::msToTicks(10.0));

    ASSERT_EQ(rm.perServer.size(), 3u);
    std::uint64_t completed = 0, generated = 0, samples = 0;
    std::uint64_t max_latency = 0;
    double achieved = 0.0, rps = 0.0;
    for (const Measurement &m : rm.perServer) {
        EXPECT_GT(m.completed, 0u);
        completed += m.completed;
        generated += m.generated;
        samples += m.latency.count();
        max_latency = std::max(max_latency, m.latency.max());
        achieved += m.achievedGbps;
        rps += m.achievedRps;
    }
    EXPECT_EQ(rm.aggregate.completed, completed);
    EXPECT_EQ(rm.aggregate.generated, generated);
    EXPECT_EQ(rm.aggregate.latency.count(), samples);
    EXPECT_EQ(rm.aggregate.latency.max(), max_latency);
    EXPECT_DOUBLE_EQ(rm.aggregate.achievedGbps, achieved);
    EXPECT_DOUBLE_EQ(rm.aggregate.achievedRps, rps);
    // The merged p99 lies within the members' latency envelope.
    std::uint64_t min_p99 = ~std::uint64_t(0);
    for (const Measurement &m : rm.perServer)
        min_p99 = std::min(min_p99, m.latency.p99());
    EXPECT_GE(rm.aggregate.latency.p99(), min_p99);
    EXPECT_LE(rm.aggregate.latency.p99(), max_latency);
}

TEST(Rack, RoundRobinBalancesWithinOnePacket)
{
    Rack rack(rackConfig(4, net::DispatchPolicy::RoundRobin));
    const RackMeasurement rm =
        rack.measure(24.0, sim::msToTicks(1.0), sim::msToTicks(5.0));

    ASSERT_EQ(rm.dispatched.size(), 4u);
    const auto [lo, hi] = std::minmax_element(rm.dispatched.begin(),
                                              rm.dispatched.end());
    EXPECT_GT(*lo, 0u);
    EXPECT_LE(*hi - *lo, 1u);
    EXPECT_NEAR(rm.imbalance, 1.0, 1e-3);
}

TEST(Rack, EveryPolicyReachesEveryMember)
{
    for (const auto policy : {net::DispatchPolicy::Random,
                              net::DispatchPolicy::Random2Choice,
                              net::DispatchPolicy::FlowHash,
                              net::DispatchPolicy::LeastQueue}) {
        SCOPED_TRACE(net::dispatchPolicyName(policy));
        Rack rack(rackConfig(4, policy));
        const RackMeasurement rm = rack.measure(
            24.0, sim::msToTicks(1.0), sim::msToTicks(5.0));
        std::uint64_t total = 0;
        for (std::uint64_t d : rm.dispatched) {
            EXPECT_GT(d, 0u);
            total += d;
        }
        EXPECT_GT(total, 1000u);
        EXPECT_GE(rm.imbalance, 1.0);
    }
}

TEST(Rack, HotFlowSkewConcentratesDispatch)
{
    // All hot traffic hashes onto one flow, so the sticky FlowHash
    // policy pins it to one member; the uniform case stays balanced.
    RackConfig uniform = rackConfig(4, net::DispatchPolicy::FlowHash);
    uniform.hotFlowFraction = 0.0;
    Rack fair(uniform);
    const RackMeasurement fair_rm =
        fair.measure(20.0, sim::msToTicks(1.0), sim::msToTicks(5.0));

    RackConfig skewed = uniform;
    skewed.hotFlowFraction = 0.6;
    Rack hot(skewed);
    const RackMeasurement hot_rm =
        hot.measure(20.0, sim::msToTicks(1.0), sim::msToTicks(5.0));

    EXPECT_LT(fair_rm.imbalance, 1.4);
    EXPECT_GT(hot_rm.imbalance, 1.8);
    EXPECT_GT(hot_rm.imbalance, fair_rm.imbalance);
}

TEST(Rack, MeasureTwiceKeepsWindowsIndependent)
{
    Rack rack(rackConfig(2, net::DispatchPolicy::RoundRobin));
    const RackMeasurement first =
        rack.measure(16.0, sim::msToTicks(1.0), sim::msToTicks(5.0));
    const RackMeasurement second =
        rack.measure(16.0, sim::msToTicks(1.0), sim::msToTicks(5.0));
    EXPECT_GT(first.aggregate.completed, 0u);
    EXPECT_GT(second.aggregate.completed, 0u);
    // Steady state: the second window serves a similar volume.
    const double a = static_cast<double>(first.aggregate.completed);
    const double b = static_cast<double>(second.aggregate.completed);
    EXPECT_NEAR(a, b, 0.15 * a);
}

TEST(Rack, EstimateScalesWithServers)
{
    Rack one(rackConfig(1, net::DispatchPolicy::PassThrough));
    Rack two(rackConfig(2, net::DispatchPolicy::RoundRobin));
    const double est1 = one.estimateCapacityRps();
    const double est2 = two.estimateCapacityRps();
    EXPECT_GT(est1, 0.0);
    EXPECT_GT(est2, 1.6 * est1);
    EXPECT_LT(est2, 2.4 * est1);
    EXPECT_GT(one.meanRequestBytes(), 0.0);
}

TEST(Rack, SweepIsBitwiseIdenticalAcrossWorkerCounts)
{
    // Each rack cell owns its Simulation, so worker count and thread
    // scheduling must not leak into any number: serial and 1/2/8
    // worker sweeps are the same bits.
    ExperimentOptions opts;
    opts.targetSamples = 2000;
    std::vector<RackCell> cells;
    for (unsigned servers : {1u, 2u}) {
        RackCell cell;
        cell.config = rackConfig(
            servers, servers == 1 ? net::DispatchPolicy::PassThrough
                                  : net::DispatchPolicy::LeastQueue);
        cell.opts = opts;
        cell.costHint = servers;  // larger racks start first
        cells.push_back(cell);
    }

    std::vector<RackRunResult> serial;
    for (const auto &c : cells)
        serial.push_back(runRackExperiment(c.config, c.opts));

    for (unsigned workers : {1u, 2u, 8u}) {
        SCOPED_TRACE(workers);
        ExperimentRunner runner(workers);
        const auto par = runner.runRackCells(cells);
        ASSERT_EQ(par.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            SCOPED_TRACE(i);
            // Results land in input order regardless of start order.
            EXPECT_EQ(par[i].config.servers, cells[i].config.servers);
            expectBitwiseEqual(serial[i], par[i]);
        }
    }
}

TEST(Rack, FleetSizingReportsArithmeticAndSimulated)
{
    ExperimentOptions opts;
    opts.targetSamples = 2000;

    // Capacity of one server, measured: the arithmetic baseline.
    Rack probe(rackConfig(1, net::DispatchPolicy::PassThrough));
    const Capacity single = findCapacity(probe, opts);
    ASSERT_GT(single.requestGbps, 0.0);

    const double demand = 1.6 * single.requestGbps;
    const FleetSizing fs = sizeFleetBySimulation(
        rackConfig(4, net::DispatchPolicy::RoundRobin), demand,
        /*p99_budget_us=*/1e6, single.requestGbps, opts);

    EXPECT_EQ(fs.arithmeticServers, 2u);
    EXPECT_TRUE(fs.met);
    EXPECT_GE(fs.simulatedServers, 1u);
    EXPECT_GE(fs.achievedGbps, 0.97 * demand);
    EXPECT_EQ(fs.deltaServers(),
              static_cast<int>(fs.simulatedServers) - 2);
}

TEST(Rack, FleetSizingRejectsImpossibleBudget)
{
    ExperimentOptions opts;
    opts.targetSamples = 1000;
    // A p99 budget below any physical latency cannot be met.
    const FleetSizing fs = sizeFleetBySimulation(
        rackConfig(1, net::DispatchPolicy::RoundRobin),
        /*demand=*/10.0, /*p99_budget_us=*/1e-3,
        /*per_server_gbps=*/20.0, opts);
    EXPECT_FALSE(fs.met);
    EXPECT_EQ(fs.arithmeticServers, 1u);
}

TEST(RackDeath, PassThroughRequiresExactlyOneServer)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_EXIT(
        { Rack rack(rackConfig(2, net::DispatchPolicy::PassThrough)); },
        ::testing::ExitedWithCode(1), "");
}

TEST(RackDeath, ZeroServersIsFatal)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_EXIT(
        { Rack rack(rackConfig(0, net::DispatchPolicy::RoundRobin)); },
        ::testing::ExitedWithCode(1), "");
}

TEST(RackDeath, LocalDriveWorkloadsCannotFormARack)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    RackConfig cfg = rackConfig(2, net::DispatchPolicy::RoundRobin);
    cfg.workloadId = "crypto_rsa";  // local-drive: no packets to route
    EXPECT_EXIT({ Rack rack(cfg); },
                ::testing::ExitedWithCode(1), "");
}
