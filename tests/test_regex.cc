/**
 * @file
 * Tests for the regex parser, NFA, DFA and rule sets. The DFA is
 * cross-validated against the NFA reference on random inputs.
 */

#include <gtest/gtest.h>

#include <string>

#include "alg/regex/dfa.hh"
#include "alg/regex/nfa.hh"
#include "alg/regex/parser.hh"
#include "alg/regex/ruleset.hh"
#include "sim/random.hh"

using namespace snic::alg;
using namespace snic::alg::regex;
using snic::sim::Random;

namespace {

bool
nfaMatches(const std::string &pattern, const std::string &text)
{
    WorkCounters work;
    const Nfa nfa = Nfa::compile(pattern);
    return nfa.scan(reinterpret_cast<const std::uint8_t *>(text.data()),
                    text.size(), work)
        .count(0) > 0;
}

bool
dfaMatches(const std::string &pattern, const std::string &text)
{
    WorkCounters work;
    const Nfa nfa = Nfa::compile(pattern);
    const Dfa dfa(nfa);
    return dfa.scan(reinterpret_cast<const std::uint8_t *>(text.data()),
                    text.size(), work)
        .count(0) > 0;
}

} // anonymous namespace

TEST(Parser, RejectsMalformedPatterns)
{
    for (const char *bad : {"(", "a)", "[abc", "a{2,1}", "*a", "a{x}",
                            "\\x1", "a|*"}) {
        EXPECT_THROW(Parser::parse(bad), Parser::ParseError) << bad;
    }
}

TEST(Parser, AcceptsStudyPatterns)
{
    for (RuleSetId id : {RuleSetId::FileImage, RuleSetId::FileFlash,
                         RuleSetId::FileExecutable}) {
        for (const auto &p : makeRuleSet(id).patterns)
            EXPECT_NO_THROW(Parser::parse(p)) << p;
    }
}

struct MatchCase
{
    const char *pattern;
    const char *text;
    bool expect;
};

class RegexSemantics : public ::testing::TestWithParam<MatchCase>
{
};

TEST_P(RegexSemantics, NfaAndDfaAgreeWithExpectation)
{
    const auto &[pattern, text, expect] = GetParam();
    EXPECT_EQ(nfaMatches(pattern, text), expect)
        << "NFA " << pattern << " vs " << text;
    EXPECT_EQ(dfaMatches(pattern, text), expect)
        << "DFA " << pattern << " vs " << text;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, RegexSemantics,
    ::testing::Values(
        MatchCase{"abc", "xxabcxx", true},
        MatchCase{"abc", "xxabxcx", false},
        MatchCase{"a.c", "zzabz", false},
        MatchCase{"a.c", "zzaXcz", true},
        MatchCase{"ab*c", "xacx", true},
        MatchCase{"ab*c", "xabbbbcx", true},
        MatchCase{"ab+c", "xacx", false},
        MatchCase{"ab+c", "xabcx", true},
        MatchCase{"ab?c", "abc", true},
        MatchCase{"ab?c", "ac", true},
        MatchCase{"ab?c", "abbc", false},
        MatchCase{"a{3}", "xaaax", true},
        MatchCase{"a{3}", "xaax", false},
        MatchCase{"ba{2,4}b", "xbaaabx", true},
        MatchCase{"ba{2,4}b", "xbabx", false},
        MatchCase{"ba{2,4}b", "baaaaab", false},
        MatchCase{"ba{2,}b", "xbaaaaaaab", true},
        MatchCase{"ba{2,}b", "xbab", false},
        MatchCase{"a{0,2}b", "zzb", true},
        MatchCase{"(cat|dog)food", "mydogfood", true},
        MatchCase{"(cat|dog)food", "mycowfood", false},
        MatchCase{"[a-c]+z", "xbazy", true},
        MatchCase{"[^0-9]7", "a7", true},
        MatchCase{"[^0-9]7", "77", false},
        MatchCase{"\\d{3}", "ab123cd", true},
        MatchCase{"\\d{3}", "ab12cd", false},
        MatchCase{"\\w+@\\w+", "mail me@you now", true},
        MatchCase{"\\s", "nospace", false},
        MatchCase{"\\x41\\x42", "xxAByy", true},
        MatchCase{"a\\.b", "a.b", true},
        MatchCase{"a\\.b", "axb", false},
        MatchCase{"GIF8[79]a", "zzGIF89azz", true},
        MatchCase{"GIF8[79]a", "zzGIF88azz", false}));

TEST(Dfa, MultiPatternTagsAreDistinct)
{
    const Nfa nfa = Nfa::compileMany({"cat", "dog", "bird{2}"});
    const Dfa dfa(nfa);
    WorkCounters work;
    const std::string text = "the dog chased the cat up a tree";
    auto tags = dfa.scan(
        reinterpret_cast<const std::uint8_t *>(text.data()),
        text.size(), work);
    EXPECT_TRUE(tags.count(0));
    EXPECT_TRUE(tags.count(1));
    EXPECT_FALSE(tags.count(2));
}

TEST(Dfa, AgreesWithNfaOnRandomInputs)
{
    // Property test: DFA and NFA must classify identical tag sets on
    // random byte strings for a non-trivial pattern mix.
    const std::vector<std::string> patterns{
        "ab+c", "x[0-9]{2}y", "(foo|bar)baz", "\\x7fELF", "z.z"};
    const Nfa nfa = Nfa::compileMany(patterns);
    const Dfa dfa(nfa);
    Random rng(41);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<std::uint8_t> data(rng.uniformInt(0, 60));
        for (auto &b : data) {
            // Biased alphabet so matches actually occur.
            static const char alphabet[] = "abcxyz0189forz\x7f ELF";
            b = static_cast<std::uint8_t>(
                alphabet[rng.uniformInt(0, sizeof(alphabet) - 2)]);
        }
        WorkCounters w1, w2;
        const auto from_nfa = nfa.scan(data.data(), data.size(), w1);
        const auto from_dfa = dfa.scan(data.data(), data.size(), w2);
        ASSERT_EQ(from_nfa, from_dfa)
            << "trial " << trial << " len " << data.size();
    }
}

TEST(Dfa, CountsPerByteWork)
{
    const Dfa dfa(Nfa::compile("needle"));
    WorkCounters work;
    std::vector<std::uint8_t> hay(1000, 'x');
    dfa.scan(hay.data(), hay.size(), work);
    EXPECT_EQ(work.randomTouches, 1000u);
    EXPECT_EQ(work.streamBytes, 1000u);
}

TEST(RuleSets, AllCompileWithinBudget)
{
    for (RuleSetId id : {RuleSetId::FileImage, RuleSetId::FileFlash,
                         RuleSetId::FileExecutable}) {
        const CompiledRuleSet compiled(makeRuleSet(id));
        EXPECT_GT(compiled.dfa().numStates(), 10u) << compiled.name();
        EXPECT_GT(compiled.numPatterns(), 5u);
    }
}

TEST(RuleSets, ImageIsTheHeaviestSet)
{
    // The paper's mechanism (Fig. 5): file_image compiles to a much
    // larger automaton than the literal-heavy sets.
    const CompiledRuleSet img(makeRuleSet(RuleSetId::FileImage));
    const CompiledRuleSet fla(makeRuleSet(RuleSetId::FileFlash));
    const CompiledRuleSet exe(makeRuleSet(RuleSetId::FileExecutable));
    EXPECT_GT(img.tableBytes(), fla.tableBytes());
    EXPECT_GT(img.tableBytes(), exe.tableBytes());
}

TEST(RuleSets, SeededPayloadsMatchAndCleanOnesRarely)
{
    Random rng(43);
    const RuleSet rules = makeRuleSet(RuleSetId::FileExecutable);
    const CompiledRuleSet compiled(rules);
    WorkCounters work;
    int matched = 0;
    for (int i = 0; i < 100; ++i) {
        auto payload = synthesizePayload(rules, 256, 1.0, rng);
        matched += !compiled.dfa()
                        .scan(payload.data(), payload.size(), work)
                        .empty();
    }
    EXPECT_GE(matched, 95);  // every seeded payload should match

    int clean_matched = 0;
    for (int i = 0; i < 100; ++i) {
        auto payload = synthesizePayload(rules, 256, 0.0, rng);
        clean_matched += !compiled.dfa()
                              .scan(payload.data(), payload.size(), work)
                              .empty();
    }
    EXPECT_LE(clean_matched, 20);
}
