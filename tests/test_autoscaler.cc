/**
 * @file
 * Tests for the autoscaler decision kernel and the fleet composition
 * around it: policy semantics (thresholds, hysteresis streaks,
 * cooldown, the p99 pre-wake and survivor guard), golden determinism
 * of the scale-event sequence across serial and parallel runners,
 * flap damping under a bursty trace, the no-autoscaler fleet-of-one
 * identity against a standalone Rack, and the config death tests.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/fleet.hh"
#include "core/runner.hh"
#include "net/dc_trace.hh"

using namespace snic;
using namespace snic::core;

namespace {

constexpr const char *kWorkload = "micro_udp_1024";

AutoscalerConfig
scalerConfig(AutoscalerKind kind, unsigned min_m, unsigned max_m)
{
    AutoscalerConfig c;
    c.kind = kind;
    c.minMembers = min_m;
    c.maxMembers = max_m;
    c.upUtil = 0.70;
    c.downUtil = 0.30;
    c.hysteresisBins = 1;
    c.cooldownBins = 0;
    return c;
}

AutoscalerObservation
utilObs(double util)
{
    AutoscalerObservation o;
    o.utilization = util;
    o.completed = 1000;
    o.generated = 1000;
    o.p99Us = 50.0;
    return o;
}

/** Per-member sustainable Gbps for sizing the test traces. */
double
perMemberGbps()
{
    RackConfig rc;
    rc.workloadId = kWorkload;
    rc.platform = hw::Platform::HostCpu;
    rc.servers = 1;
    rc.policy = net::DispatchPolicy::PassThrough;
    Rack probe(rc);
    return probe.estimateCapacityRps() * probe.meanRequestBytes() *
           8.0 / 1e9;
}

/** A small single-rack fleet over an explicit rate series. */
FleetConfig
fleetConfig(AutoscalerKind kind, std::vector<double> trace)
{
    FleetConfig fc;
    RackConfig rc;
    rc.workloadId = kWorkload;
    rc.platform = hw::Platform::HostCpu;
    rc.servers = 3;
    rc.policy = net::DispatchPolicy::LeastQueue;
    rc.seed = 1;
    fc.racks.push_back(rc);
    fc.autoscaler = scalerConfig(kind, 1, 3);
    fc.autoscaler.p99BudgetUs = 500.0;
    fc.traceGbps = std::move(trace);
    fc.binTicks = sim::msToTicks(1.0);
    fc.realSecondsPerBin = 60.0;
    fc.sloP99BudgetUs = 500.0;
    fc.wakeLatencyUs = 100.0;
    fc.seed = 1;
    return fc;
}

void
expectEventsBitwiseEqual(const std::vector<ScaleEvent> &a,
                         const std::vector<ScaleEvent> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].bin, b[i].bin) << "event " << i;
        EXPECT_EQ(a[i].at, b[i].at) << "event " << i;
        EXPECT_EQ(a[i].rack, b[i].rack) << "event " << i;
        EXPECT_EQ(a[i].member, b[i].member) << "event " << i;
        EXPECT_EQ(a[i].up, b[i].up) << "event " << i;
    }
}

} // anonymous namespace

TEST(Autoscaler, StaticPinsToTheMaximum)
{
    Autoscaler a(scalerConfig(AutoscalerKind::Static, 1, 4), 2);
    EXPECT_EQ(a.observe(utilObs(0.0)), 4u);
    EXPECT_EQ(a.observe(utilObs(0.99)), 4u);
    EXPECT_EQ(a.current(), 4u);
}

TEST(Autoscaler, ReactiveThresholdsMoveOneMemberPerDecision)
{
    Autoscaler a(
        scalerConfig(AutoscalerKind::ReactiveUtilization, 1, 4), 2);
    EXPECT_EQ(a.observe(utilObs(0.80)), 3u);  // hysteresis 1: act now
    EXPECT_EQ(a.observe(utilObs(0.80)), 4u);
    EXPECT_EQ(a.observe(utilObs(0.80)), 4u);  // clamped at max
    EXPECT_EQ(a.observe(utilObs(0.50)), 4u);  // inside the band
    EXPECT_EQ(a.observe(utilObs(0.10)), 3u);
    EXPECT_EQ(a.observe(utilObs(0.10)), 2u);
    EXPECT_EQ(a.observe(utilObs(0.10)), 1u);
    EXPECT_EQ(a.observe(utilObs(0.10)), 1u);  // clamped at min
}

TEST(Autoscaler, HysteresisNeedsConsecutivePressuredBins)
{
    AutoscalerConfig c =
        scalerConfig(AutoscalerKind::ReactiveUtilization, 1, 4);
    c.hysteresisBins = 2;
    Autoscaler a(c, 2);
    EXPECT_EQ(a.observe(utilObs(0.80)), 2u);  // streak 1 of 2
    EXPECT_EQ(a.observe(utilObs(0.50)), 2u);  // interrupted: reset
    EXPECT_EQ(a.observe(utilObs(0.80)), 2u);  // streak 1 again
    EXPECT_EQ(a.observe(utilObs(0.80)), 3u);  // streak 2: move
}

TEST(Autoscaler, CooldownQuietsScaleDownsOnly)
{
    AutoscalerConfig c =
        scalerConfig(AutoscalerKind::ReactiveUtilization, 1, 4);
    c.cooldownBins = 3;
    Autoscaler a(c, 3);
    EXPECT_EQ(a.observe(utilObs(0.10)), 2u);  // down; cooldown armed
    EXPECT_EQ(a.observe(utilObs(0.10)), 2u);  // cooling
    EXPECT_EQ(a.observe(utilObs(0.10)), 2u);
    EXPECT_EQ(a.observe(utilObs(0.10)), 2u);
    EXPECT_EQ(a.observe(utilObs(0.10)), 1u);  // cooldown expired

    // A fresh scale-down arms the cooldown again, but an SLO
    // emergency jumps the queue: scale-ups are cooldown-exempt.
    Autoscaler b(c, 3);
    EXPECT_EQ(b.observe(utilObs(0.10)), 2u);
    EXPECT_EQ(b.observe(utilObs(0.90)), 3u);
}

TEST(Autoscaler, P99PreWakeFiresOnBurstAdjustedUtilization)
{
    AutoscalerConfig c =
        scalerConfig(AutoscalerKind::P99Feedback, 1, 4);
    c.p99BudgetUs = 500.0;
    c.upUtil = 0.65;
    c.burstHeadroom = 2.0;
    Autoscaler a(c, 2);
    // p99 healthy, raw utilization under the threshold — but a 2x
    // burst would not fit, so the pre-wake fires.
    AutoscalerObservation o = utilObs(0.40);
    o.p99Us = 100.0;
    EXPECT_EQ(a.observe(o), 3u);
    // Comfortably under even the adjusted threshold: no move (the
    // p99 sits above p99LowFraction x budget, so no scale-down
    // either).
    AutoscalerObservation quiet = utilObs(0.30);
    quiet.p99Us = 300.0;
    EXPECT_EQ(a.observe(quiet), 3u);
}

TEST(Autoscaler, P99BudgetBlowoutAndOutageScaleUp)
{
    AutoscalerConfig c =
        scalerConfig(AutoscalerKind::P99Feedback, 1, 4);
    c.p99BudgetUs = 500.0;
    Autoscaler a(c, 1);
    AutoscalerObservation blown = utilObs(0.20);
    blown.p99Us = 900.0;
    EXPECT_EQ(a.observe(blown), 2u);

    // A bin that generated but completed nothing is the strongest
    // tail signal of all, whatever the (meaningless) utilization.
    AutoscalerObservation outage;
    outage.generated = 500;
    outage.completed = 0;
    EXPECT_EQ(a.observe(outage), 3u);

    // An idle bin (nothing offered, nothing served) is NOT an
    // outage, and must not be read as a healthy tail either.
    AutoscalerObservation idle;
    EXPECT_EQ(a.observe(idle), 3u);
}

TEST(Autoscaler, P99SurvivorGuardBlocksRiskyScaleDowns)
{
    AutoscalerConfig c =
        scalerConfig(AutoscalerKind::P99Feedback, 1, 4);
    c.p99BudgetUs = 500.0;
    c.p99LowFraction = 0.5;
    c.upUtil = 0.65;
    Autoscaler a(c, 2);
    // Tail is fine (100 < 250), but one survivor would run at 0.80:
    // the guard refuses.
    AutoscalerObservation tempting = utilObs(0.40);
    tempting.p99Us = 100.0;
    EXPECT_EQ(a.observe(tempting), 2u);
    // At 0.25 the survivor runs at 0.50 < 0.9 x 0.65: shrink.
    AutoscalerObservation safe = utilObs(0.25);
    safe.p99Us = 100.0;
    EXPECT_EQ(a.observe(safe), 1u);
    // And never below one member, however quiet.
    EXPECT_EQ(a.observe(safe), 1u);
}

TEST(FleetScale, GoldenScaleEventsSerialEqualsParallel)
{
    // The golden determinism property: the same trace + policy must
    // produce the bitwise-identical scale-event sequence whether the
    // cells run serially (runFleetDay one by one) or through the
    // parallel sweep runner, in any interleaving.
    const double member_gbps = perMemberGbps();
    std::vector<double> trace;
    for (int i = 0; i < 12; ++i) {
        // A ramp down and back up across the scaling thresholds.
        const double frac = (i < 6) ? 0.15 : 0.55;
        trace.push_back(frac * 3.0 * member_gbps);
    }

    std::vector<FleetCell> cells;
    for (AutoscalerKind kind : {AutoscalerKind::Static,
                                AutoscalerKind::ReactiveUtilization,
                                AutoscalerKind::P99Feedback}) {
        FleetCell cell;
        cell.config = fleetConfig(kind, trace);
        cells.push_back(cell);
    }

    std::vector<FleetResult> serial;
    for (const FleetCell &cell : cells)
        serial.push_back(runFleetDay(cell.config));

    ExperimentRunner runner;
    const std::vector<FleetResult> parallel =
        runner.runFleetCells(cells);

    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        expectEventsBitwiseEqual(serial[i].events,
                                 parallel[i].events);
        EXPECT_EQ(serial[i].completed, parallel[i].completed);
        EXPECT_EQ(serial[i].sloViolationMinutes,
                  parallel[i].sloViolationMinutes);
        EXPECT_EQ(serial[i].realKwh, parallel[i].realKwh);
        EXPECT_EQ(serial[i].tcoUsd5yr, parallel[i].tcoUsd5yr);
    }
    // The autoscaled policies actually scaled on this trace —
    // otherwise the golden comparison above pinned nothing.
    EXPECT_TRUE(serial[0].events.empty());  // Static never moves
    EXPECT_FALSE(serial[1].events.empty());
    EXPECT_FALSE(serial[2].events.empty());
}

TEST(FleetScale, HysteresisPreventsFlappingUnderBursts)
{
    // A trace alternating across both thresholds every bin. The
    // twitchy config (streak 1, no cooldown) chases it; the damped
    // config (streak 2 + cooldown) must sit still — alternating
    // pressure never builds a streak.
    const double member_gbps = perMemberGbps();
    std::vector<double> trace;
    for (int i = 0; i < 16; ++i) {
        const double frac = (i % 2 == 0) ? 0.20 : 0.60;
        trace.push_back(frac * 3.0 * member_gbps);
    }

    FleetConfig twitchy =
        fleetConfig(AutoscalerKind::ReactiveUtilization, trace);
    twitchy.autoscaler.hysteresisBins = 1;
    twitchy.autoscaler.cooldownBins = 0;
    FleetConfig damped =
        fleetConfig(AutoscalerKind::ReactiveUtilization, trace);
    damped.autoscaler.hysteresisBins = 2;
    damped.autoscaler.cooldownBins = 3;

    const FleetResult rt = runFleetDay(twitchy);
    const FleetResult rd = runFleetDay(damped);

    // The twitchy config flaps: adjacent opposite-direction moves.
    ASSERT_GE(rt.events.size(), 4u);
    bool twitchy_flapped = false;
    for (std::size_t i = 1; i < rt.events.size(); ++i) {
        if (rt.events[i].up != rt.events[i - 1].up &&
            rt.events[i].bin <= rt.events[i - 1].bin + 1)
            twitchy_flapped = true;
    }
    EXPECT_TRUE(twitchy_flapped);

    // Damping wins: strictly fewer moves, and never an immediate
    // reversal.
    EXPECT_LT(rd.events.size(), rt.events.size());
    for (std::size_t i = 1; i < rd.events.size(); ++i) {
        if (rd.events[i].up != rd.events[i - 1].up)
            EXPECT_GT(rd.events[i].bin, rd.events[i - 1].bin + 1);
    }
}

TEST(FleetScale, StaticFleetOfOneMatchesStandaloneRack)
{
    // The composition identity: a 1-rack fleet under the Static
    // policy adds no events, so driving the same rack standalone
    // through the same beginTrace/beginBin cadence must reproduce
    // the fleet's numbers bitwise.
    const double member_gbps = perMemberGbps();
    std::vector<double> trace;
    for (int i = 0; i < 6; ++i)
        trace.push_back(0.4 * 3.0 * member_gbps);

    FleetConfig fc = fleetConfig(AutoscalerKind::Static, trace);
    const FleetResult fleet = runFleetDay(fc);
    ASSERT_EQ(fleet.racks.size(), 1u);
    EXPECT_TRUE(fleet.events.empty());

    RackConfig rc = fc.racks[0];
    rc.powerSpecs.wakeLatency = sim::usToTicks(fc.wakeLatencyUs);
    Rack rack(rc);
    rack.beginTrace(trace, fc.binTicks);
    std::uint64_t completed = 0;
    std::vector<double> bin_p99;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        rack.beginBin();
        rack.sim().runUntil(fc.binTicks *
                            static_cast<sim::Tick>(i + 1));
        const RackBinStats bin = rack.endBin(fc.binTicks);
        completed += bin.completed;
        bin_p99.push_back(bin.p99Us());
    }
    rack.stopTrace();

    EXPECT_EQ(fleet.racks[0].completed, completed);
    ASSERT_EQ(fleet.racks[0].binP99Us.size(), bin_p99.size());
    for (std::size_t i = 0; i < bin_p99.size(); ++i)
        EXPECT_DOUBLE_EQ(fleet.racks[0].binP99Us[i], bin_p99[i])
            << "bin " << i;
}

TEST(AutoscalerDeath, ConfigValidationIsFatal)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_EXIT(
        {
            Autoscaler a(
                scalerConfig(AutoscalerKind::ReactiveUtilization, 3, 2),
                3);
        },
        ::testing::ExitedWithCode(1), "minMembers 3 > maxMembers 2");
    EXPECT_EXIT(
        {
            Autoscaler a(
                scalerConfig(AutoscalerKind::ReactiveUtilization, 0, 2),
                1);
        },
        ::testing::ExitedWithCode(1), "minMembers must be >= 1");
    EXPECT_EXIT(
        {
            AutoscalerConfig c = scalerConfig(
                AutoscalerKind::ReactiveUtilization, 1, 4);
            c.downUtil = 0.80;  // above upUtil: no hysteresis band
            Autoscaler a(c, 2);
        },
        ::testing::ExitedWithCode(1), "no hysteresis band");
    EXPECT_EXIT(
        {
            Autoscaler a(
                scalerConfig(AutoscalerKind::ReactiveUtilization, 1, 4),
                5);  // start outside [min, max]
        },
        ::testing::ExitedWithCode(1), "outside");
}

TEST(AutoscalerDeath, NegativeWakeLatencyIsFatal)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_EXIT(
        {
            FleetConfig fc =
                fleetConfig(AutoscalerKind::Static, {1.0, 1.0});
            fc.wakeLatencyUs = -1.0;  // the classic sign bug
            Fleet fleet(fc);
        },
        ::testing::ExitedWithCode(1), "negative");
}
