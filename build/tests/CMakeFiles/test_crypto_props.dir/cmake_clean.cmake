file(REMOVE_RECURSE
  "CMakeFiles/test_crypto_props.dir/test_crypto_props.cc.o"
  "CMakeFiles/test_crypto_props.dir/test_crypto_props.cc.o.d"
  "test_crypto_props"
  "test_crypto_props.pdb"
  "test_crypto_props[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto_props.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
