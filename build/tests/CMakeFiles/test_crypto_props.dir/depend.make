# Empty dependencies file for test_crypto_props.
# This may be replaced when dependencies are built.
