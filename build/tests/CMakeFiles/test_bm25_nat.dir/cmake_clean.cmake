file(REMOVE_RECURSE
  "CMakeFiles/test_bm25_nat.dir/test_bm25_nat.cc.o"
  "CMakeFiles/test_bm25_nat.dir/test_bm25_nat.cc.o.d"
  "test_bm25_nat"
  "test_bm25_nat.pdb"
  "test_bm25_nat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bm25_nat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
