# Empty dependencies file for test_bm25_nat.
# This may be replaced when dependencies are built.
