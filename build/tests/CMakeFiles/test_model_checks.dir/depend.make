# Empty dependencies file for test_model_checks.
# This may be replaced when dependencies are built.
