file(REMOVE_RECURSE
  "CMakeFiles/test_model_checks.dir/test_model_checks.cc.o"
  "CMakeFiles/test_model_checks.dir/test_model_checks.cc.o.d"
  "test_model_checks"
  "test_model_checks.pdb"
  "test_model_checks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_checks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
