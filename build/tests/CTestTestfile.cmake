# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_event_queue[1]_include.cmake")
include("/root/repo/build/tests/test_random[1]_include.cmake")
include("/root/repo/build/tests/test_histogram[1]_include.cmake")
include("/root/repo/build/tests/test_timeseries[1]_include.cmake")
include("/root/repo/build/tests/test_counter[1]_include.cmake")
include("/root/repo/build/tests/test_summary[1]_include.cmake")
include("/root/repo/build/tests/test_deflate[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_regex[1]_include.cmake")
include("/root/repo/build/tests/test_kv[1]_include.cmake")
include("/root/repo/build/tests/test_bm25_nat[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_hw[1]_include.cmake")
include("/root/repo/build/tests/test_stack[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_testbed[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_regex_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_model_checks[1]_include.cmake")
include("/root/repo/build/tests/test_crypto_props[1]_include.cmake")
include("/root/repo/build/tests/test_regressions[1]_include.cmake")
include("/root/repo/build/tests/test_misc_coverage[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_ascii_plot[1]_include.cmake")
include("/root/repo/build/tests/test_paper_shapes[1]_include.cmake")
