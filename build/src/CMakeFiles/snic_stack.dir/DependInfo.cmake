
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stack/dpdk_stack.cc" "src/CMakeFiles/snic_stack.dir/stack/dpdk_stack.cc.o" "gcc" "src/CMakeFiles/snic_stack.dir/stack/dpdk_stack.cc.o.d"
  "/root/repo/src/stack/rdma_stack.cc" "src/CMakeFiles/snic_stack.dir/stack/rdma_stack.cc.o" "gcc" "src/CMakeFiles/snic_stack.dir/stack/rdma_stack.cc.o.d"
  "/root/repo/src/stack/stack_model.cc" "src/CMakeFiles/snic_stack.dir/stack/stack_model.cc.o" "gcc" "src/CMakeFiles/snic_stack.dir/stack/stack_model.cc.o.d"
  "/root/repo/src/stack/tcp_stack.cc" "src/CMakeFiles/snic_stack.dir/stack/tcp_stack.cc.o" "gcc" "src/CMakeFiles/snic_stack.dir/stack/tcp_stack.cc.o.d"
  "/root/repo/src/stack/udp_stack.cc" "src/CMakeFiles/snic_stack.dir/stack/udp_stack.cc.o" "gcc" "src/CMakeFiles/snic_stack.dir/stack/udp_stack.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/snic_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snic_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snic_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snic_alg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snic_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
