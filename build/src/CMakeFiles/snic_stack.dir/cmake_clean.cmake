file(REMOVE_RECURSE
  "CMakeFiles/snic_stack.dir/stack/dpdk_stack.cc.o"
  "CMakeFiles/snic_stack.dir/stack/dpdk_stack.cc.o.d"
  "CMakeFiles/snic_stack.dir/stack/rdma_stack.cc.o"
  "CMakeFiles/snic_stack.dir/stack/rdma_stack.cc.o.d"
  "CMakeFiles/snic_stack.dir/stack/stack_model.cc.o"
  "CMakeFiles/snic_stack.dir/stack/stack_model.cc.o.d"
  "CMakeFiles/snic_stack.dir/stack/tcp_stack.cc.o"
  "CMakeFiles/snic_stack.dir/stack/tcp_stack.cc.o.d"
  "CMakeFiles/snic_stack.dir/stack/udp_stack.cc.o"
  "CMakeFiles/snic_stack.dir/stack/udp_stack.cc.o.d"
  "libsnic_stack.a"
  "libsnic_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snic_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
