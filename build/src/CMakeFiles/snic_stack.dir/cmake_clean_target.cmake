file(REMOVE_RECURSE
  "libsnic_stack.a"
)
