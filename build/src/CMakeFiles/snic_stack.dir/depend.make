# Empty dependencies file for snic_stack.
# This may be replaced when dependencies are built.
