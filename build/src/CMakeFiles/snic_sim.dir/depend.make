# Empty dependencies file for snic_sim.
# This may be replaced when dependencies are built.
