file(REMOVE_RECURSE
  "libsnic_sim.a"
)
