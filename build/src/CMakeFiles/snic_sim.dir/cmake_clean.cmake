file(REMOVE_RECURSE
  "CMakeFiles/snic_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/snic_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/snic_sim.dir/sim/logging.cc.o"
  "CMakeFiles/snic_sim.dir/sim/logging.cc.o.d"
  "CMakeFiles/snic_sim.dir/sim/random.cc.o"
  "CMakeFiles/snic_sim.dir/sim/random.cc.o.d"
  "CMakeFiles/snic_sim.dir/sim/simulation.cc.o"
  "CMakeFiles/snic_sim.dir/sim/simulation.cc.o.d"
  "libsnic_sim.a"
  "libsnic_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snic_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
