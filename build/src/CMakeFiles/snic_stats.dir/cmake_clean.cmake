file(REMOVE_RECURSE
  "CMakeFiles/snic_stats.dir/stats/ascii_plot.cc.o"
  "CMakeFiles/snic_stats.dir/stats/ascii_plot.cc.o.d"
  "CMakeFiles/snic_stats.dir/stats/counter.cc.o"
  "CMakeFiles/snic_stats.dir/stats/counter.cc.o.d"
  "CMakeFiles/snic_stats.dir/stats/histogram.cc.o"
  "CMakeFiles/snic_stats.dir/stats/histogram.cc.o.d"
  "CMakeFiles/snic_stats.dir/stats/summary.cc.o"
  "CMakeFiles/snic_stats.dir/stats/summary.cc.o.d"
  "CMakeFiles/snic_stats.dir/stats/timeseries.cc.o"
  "CMakeFiles/snic_stats.dir/stats/timeseries.cc.o.d"
  "libsnic_stats.a"
  "libsnic_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snic_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
