file(REMOVE_RECURSE
  "libsnic_stats.a"
)
