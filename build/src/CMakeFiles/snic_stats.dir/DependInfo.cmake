
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/ascii_plot.cc" "src/CMakeFiles/snic_stats.dir/stats/ascii_plot.cc.o" "gcc" "src/CMakeFiles/snic_stats.dir/stats/ascii_plot.cc.o.d"
  "/root/repo/src/stats/counter.cc" "src/CMakeFiles/snic_stats.dir/stats/counter.cc.o" "gcc" "src/CMakeFiles/snic_stats.dir/stats/counter.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/snic_stats.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/snic_stats.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/summary.cc" "src/CMakeFiles/snic_stats.dir/stats/summary.cc.o" "gcc" "src/CMakeFiles/snic_stats.dir/stats/summary.cc.o.d"
  "/root/repo/src/stats/timeseries.cc" "src/CMakeFiles/snic_stats.dir/stats/timeseries.cc.o" "gcc" "src/CMakeFiles/snic_stats.dir/stats/timeseries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/snic_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
