# Empty compiler generated dependencies file for snic_stats.
# This may be replaced when dependencies are built.
