
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/bm25.cc" "src/CMakeFiles/snic_workloads.dir/workloads/bm25.cc.o" "gcc" "src/CMakeFiles/snic_workloads.dir/workloads/bm25.cc.o.d"
  "/root/repo/src/workloads/compression.cc" "src/CMakeFiles/snic_workloads.dir/workloads/compression.cc.o" "gcc" "src/CMakeFiles/snic_workloads.dir/workloads/compression.cc.o.d"
  "/root/repo/src/workloads/crypto.cc" "src/CMakeFiles/snic_workloads.dir/workloads/crypto.cc.o" "gcc" "src/CMakeFiles/snic_workloads.dir/workloads/crypto.cc.o.d"
  "/root/repo/src/workloads/dfa_scan.cc" "src/CMakeFiles/snic_workloads.dir/workloads/dfa_scan.cc.o" "gcc" "src/CMakeFiles/snic_workloads.dir/workloads/dfa_scan.cc.o.d"
  "/root/repo/src/workloads/fio.cc" "src/CMakeFiles/snic_workloads.dir/workloads/fio.cc.o" "gcc" "src/CMakeFiles/snic_workloads.dir/workloads/fio.cc.o.d"
  "/root/repo/src/workloads/mica.cc" "src/CMakeFiles/snic_workloads.dir/workloads/mica.cc.o" "gcc" "src/CMakeFiles/snic_workloads.dir/workloads/mica.cc.o.d"
  "/root/repo/src/workloads/micro_dpdk.cc" "src/CMakeFiles/snic_workloads.dir/workloads/micro_dpdk.cc.o" "gcc" "src/CMakeFiles/snic_workloads.dir/workloads/micro_dpdk.cc.o.d"
  "/root/repo/src/workloads/micro_rdma.cc" "src/CMakeFiles/snic_workloads.dir/workloads/micro_rdma.cc.o" "gcc" "src/CMakeFiles/snic_workloads.dir/workloads/micro_rdma.cc.o.d"
  "/root/repo/src/workloads/micro_udp.cc" "src/CMakeFiles/snic_workloads.dir/workloads/micro_udp.cc.o" "gcc" "src/CMakeFiles/snic_workloads.dir/workloads/micro_udp.cc.o.d"
  "/root/repo/src/workloads/nat.cc" "src/CMakeFiles/snic_workloads.dir/workloads/nat.cc.o" "gcc" "src/CMakeFiles/snic_workloads.dir/workloads/nat.cc.o.d"
  "/root/repo/src/workloads/ovs.cc" "src/CMakeFiles/snic_workloads.dir/workloads/ovs.cc.o" "gcc" "src/CMakeFiles/snic_workloads.dir/workloads/ovs.cc.o.d"
  "/root/repo/src/workloads/redis.cc" "src/CMakeFiles/snic_workloads.dir/workloads/redis.cc.o" "gcc" "src/CMakeFiles/snic_workloads.dir/workloads/redis.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/snic_workloads.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/snic_workloads.dir/workloads/registry.cc.o.d"
  "/root/repo/src/workloads/rem.cc" "src/CMakeFiles/snic_workloads.dir/workloads/rem.cc.o" "gcc" "src/CMakeFiles/snic_workloads.dir/workloads/rem.cc.o.d"
  "/root/repo/src/workloads/snort.cc" "src/CMakeFiles/snic_workloads.dir/workloads/snort.cc.o" "gcc" "src/CMakeFiles/snic_workloads.dir/workloads/snort.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/snic_workloads.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/snic_workloads.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/snic_alg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snic_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snic_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snic_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snic_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snic_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
