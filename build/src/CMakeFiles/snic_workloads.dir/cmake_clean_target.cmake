file(REMOVE_RECURSE
  "libsnic_workloads.a"
)
