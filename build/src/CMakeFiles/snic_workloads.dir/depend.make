# Empty dependencies file for snic_workloads.
# This may be replaced when dependencies are built.
