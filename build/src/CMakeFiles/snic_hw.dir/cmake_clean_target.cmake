file(REMOVE_RECURSE
  "libsnic_hw.a"
)
