
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/accelerator.cc" "src/CMakeFiles/snic_hw.dir/hw/accelerator.cc.o" "gcc" "src/CMakeFiles/snic_hw.dir/hw/accelerator.cc.o.d"
  "/root/repo/src/hw/cpu_platform.cc" "src/CMakeFiles/snic_hw.dir/hw/cpu_platform.cc.o" "gcc" "src/CMakeFiles/snic_hw.dir/hw/cpu_platform.cc.o.d"
  "/root/repo/src/hw/eswitch.cc" "src/CMakeFiles/snic_hw.dir/hw/eswitch.cc.o" "gcc" "src/CMakeFiles/snic_hw.dir/hw/eswitch.cc.o.d"
  "/root/repo/src/hw/pcie.cc" "src/CMakeFiles/snic_hw.dir/hw/pcie.cc.o" "gcc" "src/CMakeFiles/snic_hw.dir/hw/pcie.cc.o.d"
  "/root/repo/src/hw/platform.cc" "src/CMakeFiles/snic_hw.dir/hw/platform.cc.o" "gcc" "src/CMakeFiles/snic_hw.dir/hw/platform.cc.o.d"
  "/root/repo/src/hw/server.cc" "src/CMakeFiles/snic_hw.dir/hw/server.cc.o" "gcc" "src/CMakeFiles/snic_hw.dir/hw/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/snic_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snic_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snic_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snic_alg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
