file(REMOVE_RECURSE
  "CMakeFiles/snic_hw.dir/hw/accelerator.cc.o"
  "CMakeFiles/snic_hw.dir/hw/accelerator.cc.o.d"
  "CMakeFiles/snic_hw.dir/hw/cpu_platform.cc.o"
  "CMakeFiles/snic_hw.dir/hw/cpu_platform.cc.o.d"
  "CMakeFiles/snic_hw.dir/hw/eswitch.cc.o"
  "CMakeFiles/snic_hw.dir/hw/eswitch.cc.o.d"
  "CMakeFiles/snic_hw.dir/hw/pcie.cc.o"
  "CMakeFiles/snic_hw.dir/hw/pcie.cc.o.d"
  "CMakeFiles/snic_hw.dir/hw/platform.cc.o"
  "CMakeFiles/snic_hw.dir/hw/platform.cc.o.d"
  "CMakeFiles/snic_hw.dir/hw/server.cc.o"
  "CMakeFiles/snic_hw.dir/hw/server.cc.o.d"
  "libsnic_hw.a"
  "libsnic_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snic_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
