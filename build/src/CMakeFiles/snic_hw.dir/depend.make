# Empty dependencies file for snic_hw.
# This may be replaced when dependencies are built.
