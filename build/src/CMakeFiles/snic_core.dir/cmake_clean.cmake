file(REMOVE_RECURSE
  "CMakeFiles/snic_core.dir/core/advisor.cc.o"
  "CMakeFiles/snic_core.dir/core/advisor.cc.o.d"
  "CMakeFiles/snic_core.dir/core/calibration.cc.o"
  "CMakeFiles/snic_core.dir/core/calibration.cc.o.d"
  "CMakeFiles/snic_core.dir/core/efficiency.cc.o"
  "CMakeFiles/snic_core.dir/core/efficiency.cc.o.d"
  "CMakeFiles/snic_core.dir/core/experiment.cc.o"
  "CMakeFiles/snic_core.dir/core/experiment.cc.o.d"
  "CMakeFiles/snic_core.dir/core/load_balancer.cc.o"
  "CMakeFiles/snic_core.dir/core/load_balancer.cc.o.d"
  "CMakeFiles/snic_core.dir/core/report.cc.o"
  "CMakeFiles/snic_core.dir/core/report.cc.o.d"
  "CMakeFiles/snic_core.dir/core/tco.cc.o"
  "CMakeFiles/snic_core.dir/core/tco.cc.o.d"
  "CMakeFiles/snic_core.dir/core/testbed.cc.o"
  "CMakeFiles/snic_core.dir/core/testbed.cc.o.d"
  "CMakeFiles/snic_core.dir/core/throughput_search.cc.o"
  "CMakeFiles/snic_core.dir/core/throughput_search.cc.o.d"
  "libsnic_core.a"
  "libsnic_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snic_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
