
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cc" "src/CMakeFiles/snic_core.dir/core/advisor.cc.o" "gcc" "src/CMakeFiles/snic_core.dir/core/advisor.cc.o.d"
  "/root/repo/src/core/calibration.cc" "src/CMakeFiles/snic_core.dir/core/calibration.cc.o" "gcc" "src/CMakeFiles/snic_core.dir/core/calibration.cc.o.d"
  "/root/repo/src/core/efficiency.cc" "src/CMakeFiles/snic_core.dir/core/efficiency.cc.o" "gcc" "src/CMakeFiles/snic_core.dir/core/efficiency.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/snic_core.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/snic_core.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/load_balancer.cc" "src/CMakeFiles/snic_core.dir/core/load_balancer.cc.o" "gcc" "src/CMakeFiles/snic_core.dir/core/load_balancer.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/snic_core.dir/core/report.cc.o" "gcc" "src/CMakeFiles/snic_core.dir/core/report.cc.o.d"
  "/root/repo/src/core/tco.cc" "src/CMakeFiles/snic_core.dir/core/tco.cc.o" "gcc" "src/CMakeFiles/snic_core.dir/core/tco.cc.o.d"
  "/root/repo/src/core/testbed.cc" "src/CMakeFiles/snic_core.dir/core/testbed.cc.o" "gcc" "src/CMakeFiles/snic_core.dir/core/testbed.cc.o.d"
  "/root/repo/src/core/throughput_search.cc" "src/CMakeFiles/snic_core.dir/core/throughput_search.cc.o" "gcc" "src/CMakeFiles/snic_core.dir/core/throughput_search.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/snic_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snic_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snic_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snic_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snic_alg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snic_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snic_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snic_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
