
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alg/crypto/aes.cc" "src/CMakeFiles/snic_alg.dir/alg/crypto/aes.cc.o" "gcc" "src/CMakeFiles/snic_alg.dir/alg/crypto/aes.cc.o.d"
  "/root/repo/src/alg/crypto/bignum.cc" "src/CMakeFiles/snic_alg.dir/alg/crypto/bignum.cc.o" "gcc" "src/CMakeFiles/snic_alg.dir/alg/crypto/bignum.cc.o.d"
  "/root/repo/src/alg/crypto/rsa.cc" "src/CMakeFiles/snic_alg.dir/alg/crypto/rsa.cc.o" "gcc" "src/CMakeFiles/snic_alg.dir/alg/crypto/rsa.cc.o.d"
  "/root/repo/src/alg/crypto/sha1.cc" "src/CMakeFiles/snic_alg.dir/alg/crypto/sha1.cc.o" "gcc" "src/CMakeFiles/snic_alg.dir/alg/crypto/sha1.cc.o.d"
  "/root/repo/src/alg/deflate/deflate.cc" "src/CMakeFiles/snic_alg.dir/alg/deflate/deflate.cc.o" "gcc" "src/CMakeFiles/snic_alg.dir/alg/deflate/deflate.cc.o.d"
  "/root/repo/src/alg/deflate/huffman.cc" "src/CMakeFiles/snic_alg.dir/alg/deflate/huffman.cc.o" "gcc" "src/CMakeFiles/snic_alg.dir/alg/deflate/huffman.cc.o.d"
  "/root/repo/src/alg/deflate/lz77.cc" "src/CMakeFiles/snic_alg.dir/alg/deflate/lz77.cc.o" "gcc" "src/CMakeFiles/snic_alg.dir/alg/deflate/lz77.cc.o.d"
  "/root/repo/src/alg/kv/hash_table.cc" "src/CMakeFiles/snic_alg.dir/alg/kv/hash_table.cc.o" "gcc" "src/CMakeFiles/snic_alg.dir/alg/kv/hash_table.cc.o.d"
  "/root/repo/src/alg/kv/kv_store.cc" "src/CMakeFiles/snic_alg.dir/alg/kv/kv_store.cc.o" "gcc" "src/CMakeFiles/snic_alg.dir/alg/kv/kv_store.cc.o.d"
  "/root/repo/src/alg/nat/nat_table.cc" "src/CMakeFiles/snic_alg.dir/alg/nat/nat_table.cc.o" "gcc" "src/CMakeFiles/snic_alg.dir/alg/nat/nat_table.cc.o.d"
  "/root/repo/src/alg/regex/dfa.cc" "src/CMakeFiles/snic_alg.dir/alg/regex/dfa.cc.o" "gcc" "src/CMakeFiles/snic_alg.dir/alg/regex/dfa.cc.o.d"
  "/root/repo/src/alg/regex/nfa.cc" "src/CMakeFiles/snic_alg.dir/alg/regex/nfa.cc.o" "gcc" "src/CMakeFiles/snic_alg.dir/alg/regex/nfa.cc.o.d"
  "/root/repo/src/alg/regex/parser.cc" "src/CMakeFiles/snic_alg.dir/alg/regex/parser.cc.o" "gcc" "src/CMakeFiles/snic_alg.dir/alg/regex/parser.cc.o.d"
  "/root/repo/src/alg/regex/ruleset.cc" "src/CMakeFiles/snic_alg.dir/alg/regex/ruleset.cc.o" "gcc" "src/CMakeFiles/snic_alg.dir/alg/regex/ruleset.cc.o.d"
  "/root/repo/src/alg/text/bm25.cc" "src/CMakeFiles/snic_alg.dir/alg/text/bm25.cc.o" "gcc" "src/CMakeFiles/snic_alg.dir/alg/text/bm25.cc.o.d"
  "/root/repo/src/alg/workcount.cc" "src/CMakeFiles/snic_alg.dir/alg/workcount.cc.o" "gcc" "src/CMakeFiles/snic_alg.dir/alg/workcount.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/snic_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
