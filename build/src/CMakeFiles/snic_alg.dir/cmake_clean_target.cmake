file(REMOVE_RECURSE
  "libsnic_alg.a"
)
