# Empty compiler generated dependencies file for snic_alg.
# This may be replaced when dependencies are built.
