# Empty compiler generated dependencies file for snic_net.
# This may be replaced when dependencies are built.
