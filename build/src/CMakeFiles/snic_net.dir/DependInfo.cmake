
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/dc_trace.cc" "src/CMakeFiles/snic_net.dir/net/dc_trace.cc.o" "gcc" "src/CMakeFiles/snic_net.dir/net/dc_trace.cc.o.d"
  "/root/repo/src/net/link.cc" "src/CMakeFiles/snic_net.dir/net/link.cc.o" "gcc" "src/CMakeFiles/snic_net.dir/net/link.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/CMakeFiles/snic_net.dir/net/packet.cc.o" "gcc" "src/CMakeFiles/snic_net.dir/net/packet.cc.o.d"
  "/root/repo/src/net/size_dist.cc" "src/CMakeFiles/snic_net.dir/net/size_dist.cc.o" "gcc" "src/CMakeFiles/snic_net.dir/net/size_dist.cc.o.d"
  "/root/repo/src/net/traffic_gen.cc" "src/CMakeFiles/snic_net.dir/net/traffic_gen.cc.o" "gcc" "src/CMakeFiles/snic_net.dir/net/traffic_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/snic_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snic_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
