file(REMOVE_RECURSE
  "CMakeFiles/snic_net.dir/net/dc_trace.cc.o"
  "CMakeFiles/snic_net.dir/net/dc_trace.cc.o.d"
  "CMakeFiles/snic_net.dir/net/link.cc.o"
  "CMakeFiles/snic_net.dir/net/link.cc.o.d"
  "CMakeFiles/snic_net.dir/net/packet.cc.o"
  "CMakeFiles/snic_net.dir/net/packet.cc.o.d"
  "CMakeFiles/snic_net.dir/net/size_dist.cc.o"
  "CMakeFiles/snic_net.dir/net/size_dist.cc.o.d"
  "CMakeFiles/snic_net.dir/net/traffic_gen.cc.o"
  "CMakeFiles/snic_net.dir/net/traffic_gen.cc.o.d"
  "libsnic_net.a"
  "libsnic_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snic_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
