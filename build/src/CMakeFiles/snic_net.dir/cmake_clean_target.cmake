file(REMOVE_RECURSE
  "libsnic_net.a"
)
