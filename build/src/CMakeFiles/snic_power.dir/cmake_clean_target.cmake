file(REMOVE_RECURSE
  "libsnic_power.a"
)
