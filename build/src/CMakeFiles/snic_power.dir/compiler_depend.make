# Empty compiler generated dependencies file for snic_power.
# This may be replaced when dependencies are built.
