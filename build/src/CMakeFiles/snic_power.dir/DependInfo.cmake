
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/energy.cc" "src/CMakeFiles/snic_power.dir/power/energy.cc.o" "gcc" "src/CMakeFiles/snic_power.dir/power/energy.cc.o.d"
  "/root/repo/src/power/isolation.cc" "src/CMakeFiles/snic_power.dir/power/isolation.cc.o" "gcc" "src/CMakeFiles/snic_power.dir/power/isolation.cc.o.d"
  "/root/repo/src/power/power_model.cc" "src/CMakeFiles/snic_power.dir/power/power_model.cc.o" "gcc" "src/CMakeFiles/snic_power.dir/power/power_model.cc.o.d"
  "/root/repo/src/power/sensors.cc" "src/CMakeFiles/snic_power.dir/power/sensors.cc.o" "gcc" "src/CMakeFiles/snic_power.dir/power/sensors.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/snic_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snic_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snic_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snic_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/snic_alg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
