file(REMOVE_RECURSE
  "CMakeFiles/snic_power.dir/power/energy.cc.o"
  "CMakeFiles/snic_power.dir/power/energy.cc.o.d"
  "CMakeFiles/snic_power.dir/power/isolation.cc.o"
  "CMakeFiles/snic_power.dir/power/isolation.cc.o.d"
  "CMakeFiles/snic_power.dir/power/power_model.cc.o"
  "CMakeFiles/snic_power.dir/power/power_model.cc.o.d"
  "CMakeFiles/snic_power.dir/power/sensors.cc.o"
  "CMakeFiles/snic_power.dir/power/sensors.cc.o.d"
  "libsnic_power.a"
  "libsnic_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snic_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
