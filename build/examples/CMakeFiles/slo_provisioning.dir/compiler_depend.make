# Empty compiler generated dependencies file for slo_provisioning.
# This may be replaced when dependencies are built.
