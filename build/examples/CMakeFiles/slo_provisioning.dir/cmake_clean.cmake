file(REMOVE_RECURSE
  "CMakeFiles/slo_provisioning.dir/slo_provisioning.cpp.o"
  "CMakeFiles/slo_provisioning.dir/slo_provisioning.cpp.o.d"
  "slo_provisioning"
  "slo_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slo_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
