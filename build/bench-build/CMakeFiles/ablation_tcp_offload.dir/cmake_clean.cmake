file(REMOVE_RECURSE
  "../bench/ablation_tcp_offload"
  "../bench/ablation_tcp_offload.pdb"
  "CMakeFiles/ablation_tcp_offload.dir/ablation_tcp_offload.cc.o"
  "CMakeFiles/ablation_tcp_offload.dir/ablation_tcp_offload.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tcp_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
