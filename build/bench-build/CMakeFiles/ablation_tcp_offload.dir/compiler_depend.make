# Empty compiler generated dependencies file for ablation_tcp_offload.
# This may be replaced when dependencies are built.
