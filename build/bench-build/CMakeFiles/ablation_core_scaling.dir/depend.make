# Empty dependencies file for ablation_core_scaling.
# This may be replaced when dependencies are built.
