# Empty dependencies file for whatif_host_accel.
# This may be replaced when dependencies are built.
