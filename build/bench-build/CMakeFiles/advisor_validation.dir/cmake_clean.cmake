file(REMOVE_RECURSE
  "../bench/advisor_validation"
  "../bench/advisor_validation.pdb"
  "CMakeFiles/advisor_validation.dir/advisor_validation.cc.o"
  "CMakeFiles/advisor_validation.dir/advisor_validation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advisor_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
