# Empty dependencies file for advisor_validation.
# This may be replaced when dependencies are built.
