file(REMOVE_RECURSE
  "../bench/kernels_gbench"
  "../bench/kernels_gbench.pdb"
  "CMakeFiles/kernels_gbench.dir/kernels_gbench.cc.o"
  "CMakeFiles/kernels_gbench.dir/kernels_gbench.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_gbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
