file(REMOVE_RECURSE
  "../bench/ablation_load_balancer"
  "../bench/ablation_load_balancer.pdb"
  "CMakeFiles/ablation_load_balancer.dir/ablation_load_balancer.cc.o"
  "CMakeFiles/ablation_load_balancer.dir/ablation_load_balancer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_load_balancer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
