file(REMOVE_RECURSE
  "../bench/fig7_table4_trace"
  "../bench/fig7_table4_trace.pdb"
  "CMakeFiles/fig7_table4_trace.dir/fig7_table4_trace.cc.o"
  "CMakeFiles/fig7_table4_trace.dir/fig7_table4_trace.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_table4_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
