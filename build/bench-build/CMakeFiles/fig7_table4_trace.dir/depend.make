# Empty dependencies file for fig7_table4_trace.
# This may be replaced when dependencies are built.
