file(REMOVE_RECURSE
  "../bench/fig4_functions"
  "../bench/fig4_functions.pdb"
  "CMakeFiles/fig4_functions.dir/fig4_functions.cc.o"
  "CMakeFiles/fig4_functions.dir/fig4_functions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
