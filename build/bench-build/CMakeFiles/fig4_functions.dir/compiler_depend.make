# Empty compiler generated dependencies file for fig4_functions.
# This may be replaced when dependencies are built.
