# Empty compiler generated dependencies file for fig5_rem_sweep.
# This may be replaced when dependencies are built.
