file(REMOVE_RECURSE
  "../bench/fig5_rem_sweep"
  "../bench/fig5_rem_sweep.pdb"
  "CMakeFiles/fig5_rem_sweep.dir/fig5_rem_sweep.cc.o"
  "CMakeFiles/fig5_rem_sweep.dir/fig5_rem_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_rem_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
