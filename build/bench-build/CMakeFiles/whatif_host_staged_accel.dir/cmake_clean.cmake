file(REMOVE_RECURSE
  "../bench/whatif_host_staged_accel"
  "../bench/whatif_host_staged_accel.pdb"
  "CMakeFiles/whatif_host_staged_accel.dir/whatif_host_staged_accel.cc.o"
  "CMakeFiles/whatif_host_staged_accel.dir/whatif_host_staged_accel.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_host_staged_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
