# Empty compiler generated dependencies file for table5_tco.
# This may be replaced when dependencies are built.
