file(REMOVE_RECURSE
  "../bench/table5_tco"
  "../bench/table5_tco.pdb"
  "CMakeFiles/table5_tco.dir/table5_tco.cc.o"
  "CMakeFiles/table5_tco.dir/table5_tco.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_tco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
