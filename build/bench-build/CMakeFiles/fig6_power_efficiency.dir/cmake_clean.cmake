file(REMOVE_RECURSE
  "../bench/fig6_power_efficiency"
  "../bench/fig6_power_efficiency.pdb"
  "CMakeFiles/fig6_power_efficiency.dir/fig6_power_efficiency.cc.o"
  "CMakeFiles/fig6_power_efficiency.dir/fig6_power_efficiency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_power_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
