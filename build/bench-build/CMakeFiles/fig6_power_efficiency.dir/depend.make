# Empty dependencies file for fig6_power_efficiency.
# This may be replaced when dependencies are built.
