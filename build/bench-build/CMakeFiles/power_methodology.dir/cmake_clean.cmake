file(REMOVE_RECURSE
  "../bench/power_methodology"
  "../bench/power_methodology.pdb"
  "CMakeFiles/power_methodology.dir/power_methodology.cc.o"
  "CMakeFiles/power_methodology.dir/power_methodology.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_methodology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
