# Empty dependencies file for power_methodology.
# This may be replaced when dependencies are built.
