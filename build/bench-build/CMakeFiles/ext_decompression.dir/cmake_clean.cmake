file(REMOVE_RECURSE
  "../bench/ext_decompression"
  "../bench/ext_decompression.pdb"
  "CMakeFiles/ext_decompression.dir/ext_decompression.cc.o"
  "CMakeFiles/ext_decompression.dir/ext_decompression.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_decompression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
