# Empty dependencies file for ext_decompression.
# This may be replaced when dependencies are built.
