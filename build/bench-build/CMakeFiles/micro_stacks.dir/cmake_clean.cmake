file(REMOVE_RECURSE
  "../bench/micro_stacks"
  "../bench/micro_stacks.pdb"
  "CMakeFiles/micro_stacks.dir/micro_stacks.cc.o"
  "CMakeFiles/micro_stacks.dir/micro_stacks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_stacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
