# Empty dependencies file for micro_stacks.
# This may be replaced when dependencies are built.
