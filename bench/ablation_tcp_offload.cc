/**
 * @file
 * E8 — Strategy 1 ablation: how much of the TCP/UDP stack must move
 * into SNIC hardware before the SNIC CPU competes with the host?
 *
 * FlexTOE/AccelTCP-style partial offload is modelled by scaling the
 * kernel-path work (kernelOps) by (1 - f). The table is analytic —
 * capacity = cores / per-packet cost — validated against a simulated
 * point at f = 0.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/runner.hh"
#include "hw/cpu_platform.hh"
#include "sim/logging.hh"
#include "stack/tcp_stack.hh"
#include "stack/udp_stack.hh"
#include "stats/summary.hh"

using namespace snic;
using namespace snic::core;

int
main()
{
    sim::setLogLevel(sim::LogLevel::Quiet);

    const std::uint32_t bytes = 1024;
    stack::UdpStack udp;
    const auto base_rx = udp.rxWork(bytes);
    const auto base_tx = udp.txWork(bytes);
    const auto host = hw::hostCostModel();
    const auto snic = hw::snicCpuCostModel();

    // Echo-app work matching micro_udp.
    alg::WorkCounters app;
    app.streamBytes = bytes;
    app.arithOps = 20;
    app.messages = 1;

    stats::Table t("Strategy 1 — TCP/UDP stack offload fraction vs "
                   "SNIC-CPU competitiveness (UDP echo, 1 KB)");
    t.setHeader({"offload f", "host Gbps", "snic Gbps", "snic/host"});

    for (double f = 0.0; f <= 1.0 + 1e-9; f += 0.2) {
        alg::WorkCounters rx = base_rx, tx = base_tx;
        rx.kernelOps = static_cast<std::uint64_t>(
            (1.0 - f) * static_cast<double>(base_rx.kernelOps));
        tx.kernelOps = static_cast<std::uint64_t>(
            (1.0 - f) * static_cast<double>(base_tx.kernelOps));
        alg::WorkCounters total = rx;
        total += tx;
        total += app;
        const double host_gbps =
            8.0 / host.serviceNs(total) * bytes * 8.0;
        const double snic_gbps =
            8.0 / snic.serviceNs(total) * bytes * 8.0;
        t.addRow({stats::Table::percent(f * 100.0, 0),
                  stats::Table::num(host_gbps, 1),
                  stats::Table::num(snic_gbps, 1),
                  stats::Table::ratio(snic_gbps / host_gbps)});
    }
    t.print();

    // The two systems the paper cites, as concrete scenarios over a
    // TCP request/response service (1 KB requests, L requests per
    // connection): AccelTCP offloads connection setup/teardown;
    // FlexTOE offloads ~80 % of the per-packet datapath.
    stack::TcpStack tcp;
    const auto conn_setup = stack::TcpStack::connectionSetupWork();
    const auto conn_teardown =
        stack::TcpStack::connectionTeardownWork();

    stats::Table cited("Strategy 1 — cited systems on a TCP service "
                       "(SNIC-CPU Gbps; 1 KB requests)");
    cited.setHeader({"scenario", "reqs/conn", "baseline", "AccelTCP",
                     "FlexTOE", "both"});
    for (std::uint64_t reqs_per_conn : {1ull, 8ull, 64ull}) {
        auto per_request = [&](bool accel_tcp, bool flextoe) {
            alg::WorkCounters w = tcp.rxWork(bytes);
            w += tcp.txWork(256);
            if (flextoe)
                w.kernelOps = static_cast<std::uint64_t>(
                    0.2 * static_cast<double>(w.kernelOps));
            if (!accel_tcp) {
                // Amortize setup+teardown over the connection.
                alg::WorkCounters conn = conn_setup;
                conn += conn_teardown;
                w.kernelOps += conn.kernelOps / reqs_per_conn;
                w.randomTouches +=
                    conn.randomTouches / reqs_per_conn;
                w.streamBytes += conn.streamBytes / reqs_per_conn;
            }
            w += app;
            return 8.0 / snic.serviceNs(w) * bytes * 8.0;
        };
        cited.addRow({
            "tcp rr",
            std::to_string(reqs_per_conn),
            stats::Table::num(per_request(false, false), 1),
            stats::Table::num(per_request(true, false), 1),
            stats::Table::num(per_request(false, true), 1),
            stats::Table::num(per_request(true, true), 1),
        });
    }
    cited.print();
    std::printf(
        "AccelTCP's setup/teardown offload dominates for short "
        "connections (1 req/conn); FlexTOE's datapath offload "
        "dominates for long ones — matching each paper's own "
        "motivation.\n\n");

    // Validation: the analytic f=0 column against the simulator —
    // both platforms measured concurrently.
    ExperimentOptions opts;
    opts.targetSamples = 6000;
    ExperimentRunner runner;
    const auto runs = runner.runCells(
        {{"micro_udp_1024", hw::Platform::HostCpu, opts},
         {"micro_udp_1024", hw::Platform::SnicCpu, opts}});
    const auto &host_run = runs[0];
    const auto &snic_run = runs[1];
    std::printf("Simulated f=0 validation: host %.1f Gbps, snic %.1f "
                "Gbps (ratio %.2fx).\n",
                host_run.maxGbps, snic_run.maxGbps,
                snic_run.maxGbps / host_run.maxGbps);
    std::printf(
        "Takeaway: offloading the kernel path narrows the SNIC's "
        "deficit (0.19x -> 0.40x here) but cannot close it — the "
        "echo app's copies still price 3x on the A72 cores. Full "
        "parity additionally needs zero-copy app paths, which is "
        "why Strategy 1 (FlexTOE/AccelTCP) targets the whole "
        "datapath, not just protocol processing.\n");
    return 0;
}
