/**
 * @file
 * Extension: the decompression direction of the engine.
 *
 * Sec. 2.2 (A3) notes the BlueField-2 engine serves both directions
 * ("the accelerator will return the compressed/decompressed file"),
 * but the paper's evaluation only reports compression. This bench
 * fills in the other half: inflate is branch-light table walking, so
 * the host closes most of the gap the engine enjoys on compression.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "sim/logging.hh"
#include "stats/summary.hh"

using namespace snic;
using namespace snic::core;

int
main()
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    ExperimentOptions opts;
    opts.targetSamples = 8000;

    stats::Table t("Extension — Deflate engine, both directions");
    t.setHeader({"configuration", "host Gbps", "engine Gbps",
                 "engine/host"});
    for (const char *id :
         {"comp_app", "comp_app_dec", "comp_txt", "comp_txt_dec"}) {
        const auto host =
            runExperiment(id, hw::Platform::HostCpu, opts);
        const auto accel =
            runExperiment(id, hw::Platform::SnicAccel, opts);
        t.addRow({id, stats::Table::num(host.maxGbps, 1),
                  stats::Table::num(accel.maxGbps, 1),
                  stats::Table::ratio(accel.maxGbps / host.maxGbps)});
    }
    t.print();

    std::printf(
        "Inflate costs the CPU far less than deflate's match search, "
        "so the engine's advantage shrinks on the decompression "
        "direction — offload policies should treat the two "
        "directions as different functions (KO4 again).\n");
    return 0;
}
