/**
 * @file
 * E7 — Strategy 3 ablation: REM under a bursty trace with four
 * balancing policies between the SNIC accelerator and the host CPU.
 *
 * Reproduces the paper's Sec. 5.3 argument: the SNIC path is the
 * power-efficient one at low rates but violates the SLO in bursts;
 * the host path always meets the SLO but burns power; and a software
 * threshold balancer recovers most of both — at the cost of SNIC CPU
 * cycles spent monitoring, the overhead the paper measured to be
 * prohibitive at high rates.
 */

#include <cstdio>

#include "core/load_balancer.hh"
#include "core/runner.hh"
#include "net/dc_trace.hh"
#include "sim/logging.hh"
#include "stats/summary.hh"

using namespace snic;
using namespace snic::core;

int
main()
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    ExperimentRunner runner;

    // A bursty schedule that crosses the accelerator's ~50 Gbps cap.
    const std::vector<double> rates{5.0,  10.0, 25.0, 55.0, 70.0,
                                    55.0, 25.0, 10.0, 5.0,  2.0};

    // Each BalancerBed is self-contained, so the five policies run
    // concurrently.
    const std::vector<BalancePolicy> policies{
        BalancePolicy::SnicOnly, BalancePolicy::HostOnly,
        BalancePolicy::StaticSplit, BalancePolicy::Threshold,
        BalancePolicy::HwThreshold};
    const auto policy_runs =
        runner.map(policies.size(), [&](std::size_t i) {
            BalancerConfig cfg;
            cfg.policy = policies[i];
            cfg.ratesGbps = rates;
            cfg.binTicks = sim::msToTicks(2.0);
            cfg.thresholdUs = 40.0;
            cfg.hostFraction = 0.5;
            return runBalancer(cfg);
        });

    stats::Table t("Strategy 3 — load-balancing policies "
                   "(REM file_executable, bursty trace to 70 Gbps)");
    t.setHeader({"policy", "achieved Gbps", "p99 us", "mean us",
                 "server W", "snic-cpu util", "host share"});
    for (std::size_t i = 0; i < policies.size(); ++i) {
        const auto &r = policy_runs[i];
        t.addRow({balancePolicyName(policies[i]),
                  stats::Table::num(r.achievedGbps, 2),
                  stats::Table::num(r.p99Us, 1),
                  stats::Table::num(r.meanUs, 1),
                  stats::Table::num(r.avgServerWatts, 1),
                  stats::Table::percent(r.snicCpuUtil * 100.0),
                  stats::Table::percent(r.hostShare * 100.0)});
    }
    t.print();

    // Monitoring-cost sweep: the paper's "consumes most of the SNIC
    // CPU cycles simply to monitor packets at high rates".
    const std::vector<std::uint64_t> monitor_ops{0, 120, 400, 800};
    const auto monitor_runs =
        runner.map(monitor_ops.size(), [&](std::size_t i) {
            BalancerConfig cfg;
            cfg.policy = BalancePolicy::Threshold;
            cfg.ratesGbps = std::vector<double>(8, 45.0);
            cfg.binTicks = sim::msToTicks(2.0);
            cfg.monitorOpsPerPacket = monitor_ops[i];
            return runBalancer(cfg);
        });

    stats::Table m("Threshold balancer: software monitoring cost "
                   "sweep at 45 Gbps sustained");
    m.setHeader({"monitor ops/pkt", "snic-cpu util", "p99 us"});
    for (std::size_t i = 0; i < monitor_ops.size(); ++i) {
        const auto &r = monitor_runs[i];
        m.addRow({std::to_string(monitor_ops[i]),
                  stats::Table::percent(r.snicCpuUtil * 100.0),
                  stats::Table::num(r.p99Us, 1)});
    }
    m.print();

    std::printf(
        "The hw_threshold row is the Sec. 5.3 proposal: an eSwitch-"
        "resident balancer reading engine occupancy directly — it "
        "matches the software threshold's steering without burning "
        "any SNIC CPU on monitoring.\n");
    return 0;
}
