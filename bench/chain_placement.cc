/**
 * @file
 * E9 — service-chain placement: sweep chain x placement x load for a
 * composable function chain, then pit the Meili-style
 * location/bandwidth/resource key heuristic against the DES-backed
 * chain-placement advisor under a tail-latency SLO.
 *
 * The headline scenario is a decompress -> REM scan -> KVS store
 * chain. The key heuristic is latency-blind: its resource term
 * prefers the cheap fixed-function engines, but the REM engine path
 * carries a ~25 us pipeline floor (Fig. 5), so under a tight p99 SLO
 * the heuristic's pick misses while a host placement — expensive by
 * every key — meets it. The DES evaluation sees the floor and picks
 * accordingly (or, when the SLO is loose, matches the heuristic at
 * the lower TCO).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/advisor.hh"
#include "core/chain.hh"
#include "core/throughput_search.hh"
#include "sim/logging.hh"

using namespace snic;
using namespace snic::core;

namespace {

std::string
placementLabel(const std::vector<hw::Platform> &where)
{
    std::string s;
    for (std::size_t k = 0; k < where.size(); ++k) {
        if (k)
            s += "+";
        switch (where[k]) {
          case hw::Platform::HostCpu:
            s += "host";
            break;
          case hw::Platform::SnicCpu:
            s += "snic";
            break;
          case hw::Platform::SnicAccel:
            s += "engine";
            break;
        }
    }
    return s;
}

unsigned
crossings(const std::vector<hw::Platform> &where)
{
    std::vector<hw::Placement> p;
    for (hw::Platform w : where)
        p.push_back({w, hw::AccelKind::Rem});
    return pcieCrossings(p);
}

/** Sweep one placement of one chain across load factors. */
void
sweepPlacement(const std::vector<std::string> &functions,
               const std::vector<hw::Platform> &where)
{
    ChainSpec chain;
    for (std::size_t k = 0; k < functions.size(); ++k)
        chain.then(functions[k], where[k]);

    TestbedConfig cfg;
    cfg.chain = chain;
    cfg.seed = 1;
    Testbed bed(cfg);

    ExperimentOptions opts;
    opts.targetSamples = 4000;
    opts.warmup = sim::msToTicks(1.0);
    opts.minWindow = sim::msToTicks(2.0);
    const Capacity cap = findCapacity(bed, opts);

    std::printf("%-22s %5u %9.2f", placementLabel(where).c_str(),
                crossings(where), cap.requestGbps);
    for (const double load : {0.5, 0.7, 0.9}) {
        const double rate = cap.requestGbps * load;
        const Measurement m =
            bed.measure(rate, opts.warmup,
                        windowFor(cap.rps * load, opts));
        std::printf(" %9.1f", m.p99Us());
    }
    std::printf("\n");
}

void
sweepChain(const char *title, const std::vector<std::string> &functions,
           const std::vector<std::vector<hw::Platform>> &placements)
{
    std::printf("\n== chain: %s ==\n", title);
    std::printf("%-22s %5s %9s %9s %9s %9s\n", "placement", "xPCIe",
                "cap Gbps", "p99@50%", "p99@70%", "p99@90%");
    for (const auto &where : placements)
        sweepPlacement(functions, where);
}

void
advisorShowdown(const std::vector<std::string> &functions,
                const SloConstraint &slo)
{
    std::printf("\n== advisor: p99 <= %.0f us, >= %.1f Gbps ==\n",
                slo.p99UsMax, slo.minGbps);
    ChainAdvisorOptions opts;
    opts.loadFactor = 0.7;
    opts.demandGbps = 40.0;
    const ChainAdvice advice = adviseChainPlacement(functions, slo, opts);

    std::printf("%-22s %8s %9s %9s %9s %11s %6s\n", "candidate", "key",
                "cap Gbps", "p99 us", "watts", "5yr TCO $", "SLO");
    for (const auto &c : advice.candidates) {
        if (!c.evaluated) {
            std::printf("%-22s %8.3f %9s (not DES-evaluated)\n",
                        placementLabel(c.where).c_str(),
                        c.key.combined, "-");
            continue;
        }
        std::printf("%-22s %8.3f %9.2f %9.1f %9.1f %11.0f %6s\n",
                    placementLabel(c.where).c_str(), c.key.combined,
                    c.capacityGbps, c.p99Us, c.serverWatts,
                    c.tco5yrUsd, c.meetsSlo ? "meets" : "MISS");
    }
    const auto &heur =
        advice.candidates[static_cast<std::size_t>(advice.heuristicPick)];
    std::printf("heuristic (Meili key) pick: %s -> %s\n",
                placementLabel(heur.where).c_str(),
                heur.evaluated ? (heur.meetsSlo ? "meets SLO"
                                                : "MISSES SLO")
                               : "unevaluated");
    if (advice.desPick >= 0) {
        const auto &des =
            advice.candidates[static_cast<std::size_t>(advice.desPick)];
        std::printf("DES-backed pick:            %s -> %s\n",
                    placementLabel(des.where).c_str(),
                    des.meetsSlo ? "meets SLO" : "misses SLO");
    }
    std::printf("rationale: %s\n", advice.rationale.c_str());
}

} // namespace

int
main()
{
    sim::setLogLevel(sim::LogLevel::Quiet);

    // Decompress -> REM scan -> KVS store: the offload chain where
    // every function has somewhere else it could run.
    const std::vector<std::string> dec_scan_store{
        "comp_app_dec", "rem_exe", "redis_a"};
    sweepChain("decompress -> rem -> kvs (3 functions)",
               dec_scan_store,
               {
                   {hw::Platform::HostCpu, hw::Platform::HostCpu,
                    hw::Platform::HostCpu},
                   {hw::Platform::SnicAccel, hw::Platform::SnicAccel,
                    hw::Platform::SnicCpu},
                   {hw::Platform::SnicAccel, hw::Platform::SnicAccel,
                    hw::Platform::HostCpu},
                   {hw::Platform::HostCpu, hw::Platform::SnicAccel,
                    hw::Platform::HostCpu},
                   {hw::Platform::SnicCpu, hw::Platform::SnicAccel,
                    hw::Platform::SnicCpu},
                   {hw::Platform::SnicAccel, hw::Platform::HostCpu,
                    hw::Platform::HostCpu},
               });

    // Crypto -> NAT egress: a 2-function chain with a PKA engine.
    const std::vector<std::string> crypto_nat{"crypto_aes", "nat_10k"};
    sweepChain("crypto -> nat (2 functions)", crypto_nat,
               {
                   {hw::Platform::HostCpu, hw::Platform::HostCpu},
                   {hw::Platform::SnicAccel, hw::Platform::SnicCpu},
                   {hw::Platform::SnicAccel, hw::Platform::HostCpu},
                   {hw::Platform::SnicCpu, hw::Platform::SnicCpu},
               });

    // The acceptance scenario: a tight tail SLO the engine path's
    // latency floor cannot clear.
    advisorShowdown(dec_scan_store, SloConstraint{60.0, 1.0});
    // And a loose one, where the engines win on TCO.
    advisorShowdown(dec_scan_store, SloConstraint{2000.0, 1.0});
    return 0;
}
