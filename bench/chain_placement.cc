/**
 * @file
 * E9 — service-chain placement: sweep chain x placement x load for a
 * composable function chain, then pit the Meili-style
 * location/bandwidth/resource key heuristic against the DES-backed
 * chain-placement advisor under a tail-latency SLO.
 *
 * The headline scenario is a decompress -> REM scan -> KVS store
 * chain. The key heuristic is latency-blind: its resource term
 * prefers the cheap fixed-function engines, but the REM engine path
 * carries a ~25 us pipeline floor (Fig. 5), so under a tight p99 SLO
 * the heuristic's pick misses while a host placement — expensive by
 * every key — meets it. The DES evaluation sees the floor and picks
 * accordingly (or, when the SLO is loose, matches the heuristic at
 * the lower TCO).
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/advisor.hh"
#include "core/chain.hh"
#include "core/throughput_search.hh"
#include "sim/logging.hh"

using namespace snic;
using namespace snic::core;

namespace {

std::string
placementLabel(const std::vector<hw::Platform> &where)
{
    std::string s;
    for (std::size_t k = 0; k < where.size(); ++k) {
        if (k)
            s += "+";
        switch (where[k]) {
          case hw::Platform::HostCpu:
            s += "host";
            break;
          case hw::Platform::SnicCpu:
            s += "snic";
            break;
          case hw::Platform::SnicAccel:
            s += "engine";
            break;
        }
    }
    return s;
}

unsigned
crossings(const std::vector<hw::Platform> &where)
{
    std::vector<hw::Placement> p;
    for (hw::Platform w : where)
        p.push_back({w, hw::AccelKind::Rem});
    return pcieCrossings(p);
}

/** Sweep one placement of one chain across load factors. */
void
sweepPlacement(const std::vector<std::string> &functions,
               const std::vector<hw::Platform> &where)
{
    ChainSpec chain;
    for (std::size_t k = 0; k < functions.size(); ++k)
        chain.then(functions[k], where[k]);

    TestbedConfig cfg;
    cfg.chain = chain;
    cfg.seed = 1;
    Testbed bed(cfg);

    ExperimentOptions opts;
    opts.targetSamples = 4000;
    opts.warmup = sim::msToTicks(1.0);
    opts.minWindow = sim::msToTicks(2.0);
    const Capacity cap = findCapacity(bed, opts);

    std::printf("%-22s %5u %9.2f", placementLabel(where).c_str(),
                crossings(where), cap.requestGbps);
    for (const double load : {0.5, 0.7, 0.9}) {
        const double rate = cap.requestGbps * load;
        const Measurement m =
            bed.measure(rate, opts.warmup,
                        windowFor(cap.rps * load, opts));
        std::printf(" %9.1f", m.p99Us());
    }
    std::printf("\n");
}

void
sweepChain(const char *title, const std::vector<std::string> &functions,
           const std::vector<std::vector<hw::Platform>> &placements)
{
    std::printf("\n== chain: %s ==\n", title);
    std::printf("%-22s %5s %9s %9s %9s %9s\n", "placement", "xPCIe",
                "cap Gbps", "p99@50%", "p99@70%", "p99@90%");
    for (const auto &where : placements)
        sweepPlacement(functions, where);
}

void
advisorShowdown(const std::vector<std::string> &functions,
                const SloConstraint &slo)
{
    std::printf("\n== advisor: p99 <= %.0f us, >= %.1f Gbps ==\n",
                slo.p99UsMax, slo.minGbps);
    ChainAdvisorOptions opts;
    opts.loadFactor = 0.7;
    opts.demandGbps = 40.0;
    const ChainAdvice advice = adviseChainPlacement(functions, slo, opts);

    std::printf("%-22s %8s %9s %9s %9s %11s %6s\n", "candidate", "key",
                "cap Gbps", "p99 us", "watts", "5yr TCO $", "SLO");
    for (const auto &c : advice.candidates) {
        if (!c.evaluated) {
            std::printf("%-22s %8.3f %9s (not DES-evaluated)\n",
                        placementLabel(c.where).c_str(),
                        c.key.combined, "-");
            continue;
        }
        std::printf("%-22s %8.3f %9.2f %9.1f %9.1f %11.0f %6s\n",
                    placementLabel(c.where).c_str(), c.key.combined,
                    c.capacityGbps, c.p99Us, c.serverWatts,
                    c.tco5yrUsd, c.meetsSlo ? "meets" : "MISS");
    }
    const auto &heur =
        advice.candidates[static_cast<std::size_t>(advice.heuristicPick)];
    std::printf("heuristic (Meili key) pick: %s -> %s\n",
                placementLabel(heur.where).c_str(),
                heur.evaluated ? (heur.meetsSlo ? "meets SLO"
                                                : "MISSES SLO")
                               : "unevaluated");
    if (advice.desPick >= 0) {
        const auto &des =
            advice.candidates[static_cast<std::size_t>(advice.desPick)];
        std::printf("DES-backed pick:            %s -> %s\n",
                    placementLabel(des.where).c_str(),
                    des.meetsSlo ? "meets SLO" : "misses SLO");
    }
    std::printf("rationale: %s\n", advice.rationale.c_str());
}

std::string
rackLabel(const std::vector<hw::Platform> &where,
          const std::vector<unsigned> &member)
{
    std::string s;
    for (std::size_t k = 0; k < where.size(); ++k) {
        if (k)
            s += "+";
        switch (where[k]) {
          case hw::Platform::HostCpu:
            s += "host";
            break;
          case hw::Platform::SnicCpu:
            s += "snic";
            break;
          case hw::Platform::SnicAccel:
            s += "engine";
            break;
        }
        s += "@";
        s += std::to_string(member[k]);
    }
    return s;
}

void
rackShowdown(const char *title, const std::vector<std::string> &functions,
             const SloConstraint &slo, const RackChainAdvisorOptions &opts)
{
    std::printf("\n== rack advisor: %s ==\n", title);
    std::printf("   SLO: p99 <= %.0f us, unit >= %.1f Gbps; demand %.0f "
                "Gbps; <= %u members\n",
                slo.p99UsMax, slo.minGbps, opts.demandGbps,
                opts.maxMembers);
    const RackChainAdvice advice =
        adviseRackChainPlacement(functions, slo, opts);

    std::printf("   %zu placements enumerated, %zu DES-eligible after "
                "key-rank pruning, DES budget %d\n",
                advice.enumerated, advice.desEligible, opts.desBudget);
    std::printf("%-28s %4s %8s %9s %9s %5s %11s %6s\n", "candidate",
                "mbrs", "key", "cap Gbps", "p99 us", "srv", "5yr TCO $",
                "SLO");
    for (const auto &c : advice.candidates) {
        if (!c.evaluated) {
            std::printf("%-28s %4u %8.3f (not DES-evaluated)\n",
                        rackLabel(c.where, c.member).c_str(),
                        c.membersUsed, c.key.combined);
            continue;
        }
        std::printf("%-28s %4u %8.3f %9.2f %9.1f %5u %11.0f %6s\n",
                    rackLabel(c.where, c.member).c_str(), c.membersUsed,
                    c.key.combined, c.capacityGbps, c.p99Us,
                    c.serversForDemand, c.tco5yrUsd,
                    c.meetsSlo ? "meets" : "MISS");
    }
    if (advice.heuristicPick >= 0) {
        const auto &heur = advice.candidates[static_cast<std::size_t>(
            advice.heuristicPick)];
        std::printf("heuristic (key) pick: %s\n",
                    rackLabel(heur.where, heur.member).c_str());
    }
    if (advice.desPick >= 0) {
        const auto &des =
            advice.candidates[static_cast<std::size_t>(advice.desPick)];
        std::printf("DES-backed pick:      %s (%s, %u members)\n",
                    rackLabel(des.where, des.member).c_str(),
                    des.meetsSlo ? "meets SLO" : "misses SLO",
                    des.membersUsed);
        // Contrast against the best DES-evaluated single-member unit.
        const RackChainPlacementCandidate *best_single = nullptr;
        for (const auto &c : advice.candidates) {
            if (!c.evaluated || c.membersUsed != 1)
                continue;
            if (!best_single || (c.meetsSlo && !best_single->meetsSlo) ||
                (c.meetsSlo == best_single->meetsSlo &&
                 c.tco5yrUsd < best_single->tco5yrUsd))
                best_single = &c;
        }
        if (best_single && best_single != &des) {
            std::printf(
                "vs best single-member: %s (%s, unit %.2f Gbps, "
                "TCO $%.0f)\n",
                rackLabel(best_single->where, best_single->member).c_str(),
                best_single->meetsSlo ? "meets SLO" : "misses SLO",
                best_single->capacityGbps, best_single->tco5yrUsd);
        }
    }
    std::printf("rationale: %s\n", advice.rationale.c_str());
}

/**
 * --rack mode: rack-level placement search, where the advisor may
 * spread chain stages across rack members and pays for every
 * cross-member hop through the ToR.
 *
 * The headline chain is a double REM scan (two rulesets over the
 * same stream). On one member both scans share the one RXP engine,
 * halving unit throughput; shipping the second scan to the
 * neighbor's idle engine restores it, at the price of a ToR hop
 * (forwarding + wire serialization + queueing) on every record.
 *
 * Scenario 1 (spanning wins): a per-unit throughput floor no single
 * member can sustain, with a loose p99 budget. Only the spanning
 * placement meets the SLO — and because its two members run their
 * scans on engines (hosts nearly idle), its 5-yr TCO undercuts
 * every single-member candidate too.
 *
 * Scenario 2 (spanning correctly rejected): same chain, tight p99
 * budget. The hop's ~4 us of ToR forwarding plus wire queueing
 * pushes the spanning placement past the budget; the DES sees what
 * the latency-blind key cannot and keeps the chain on one member.
 *
 * Scenario 3 (fat-payload hop priced out at the key level): a
 * decompress stage inflates each record to 64 KiB before a REM
 * scan; candidates that ship the decompressed stream across the
 * rack pay 5.2 us of wire serialization per record in the key's
 * bandwidth term, so they rank below the single-member splits
 * before any DES budget is spent.
 */
void
rackMode(bool smoke)
{
    RackChainAdvisorOptions opts;
    opts.loadFactor = 0.7;
    opts.maxMembers = 2;
    opts.desBudget = smoke ? 4 : 8;
    opts.targetSamples = smoke ? 800 : 4000;

    const std::vector<std::string> scan_pair{"rem_img", "rem_img"};
    RackChainAdvisorOptions pair_opts = opts;
    pair_opts.demandGbps = 26.0;
    rackShowdown("double REM scan, per-unit floor, loose p99",
                 scan_pair, SloConstraint{150.0, 25.0}, pair_opts);
    rackShowdown("double REM scan, tight p99 (hop over budget)",
                 scan_pair, SloConstraint{49.0, 12.0}, pair_opts);

    const std::vector<std::string> inflate_scan{
        "micro_udp_1024", "comp_app_dec", "rem_exe"};
    RackChainAdvisorOptions local_opts = opts;
    local_opts.demandGbps = 10.0;
    rackShowdown("decompress-inflated scan (64 KiB hop payload)",
                 inflate_scan, SloConstraint{2000.0, 0.5}, local_opts);
}

} // namespace

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);

    bool rack = false;
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--rack") == 0)
            rack = true;
        else if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else {
            std::fprintf(stderr,
                         "usage: %s [--rack [--smoke]]\n", argv[0]);
            return 2;
        }
    }
    if (rack) {
        rackMode(smoke);
        return 0;
    }

    // Decompress -> REM scan -> KVS store: the offload chain where
    // every function has somewhere else it could run.
    const std::vector<std::string> dec_scan_store{
        "comp_app_dec", "rem_exe", "redis_a"};
    sweepChain("decompress -> rem -> kvs (3 functions)",
               dec_scan_store,
               {
                   {hw::Platform::HostCpu, hw::Platform::HostCpu,
                    hw::Platform::HostCpu},
                   {hw::Platform::SnicAccel, hw::Platform::SnicAccel,
                    hw::Platform::SnicCpu},
                   {hw::Platform::SnicAccel, hw::Platform::SnicAccel,
                    hw::Platform::HostCpu},
                   {hw::Platform::HostCpu, hw::Platform::SnicAccel,
                    hw::Platform::HostCpu},
                   {hw::Platform::SnicCpu, hw::Platform::SnicAccel,
                    hw::Platform::SnicCpu},
                   {hw::Platform::SnicAccel, hw::Platform::HostCpu,
                    hw::Platform::HostCpu},
               });

    // Crypto -> NAT egress: a 2-function chain with a PKA engine.
    const std::vector<std::string> crypto_nat{"crypto_aes", "nat_10k"};
    sweepChain("crypto -> nat (2 functions)", crypto_nat,
               {
                   {hw::Platform::HostCpu, hw::Platform::HostCpu},
                   {hw::Platform::SnicAccel, hw::Platform::SnicCpu},
                   {hw::Platform::SnicAccel, hw::Platform::HostCpu},
                   {hw::Platform::SnicCpu, hw::Platform::SnicCpu},
               });

    // The acceptance scenario: a tight tail SLO the engine path's
    // latency floor cannot clear.
    advisorShowdown(dec_scan_store, SloConstraint{60.0, 1.0});
    // And a loose one, where the engines win on TCO.
    advisorShowdown(dec_scan_store, SloConstraint{2000.0, 1.0});
    return 0;
}
