/**
 * @file
 * google-benchmark microbenchmarks of the algorithm substrates: the
 * real (wall-clock) performance of this library's Deflate, AES,
 * SHA-1, RSA, regex-DFA and KVS implementations. These are *not*
 * paper reproductions — they document the cost of the functional
 * kernels the testbed executes.
 */

#include <benchmark/benchmark.h>

#include "alg/crypto/aes.hh"
#include "alg/crypto/rsa.hh"
#include "alg/crypto/sha1.hh"
#include "alg/deflate/deflate.hh"
#include "alg/kv/kv_store.hh"
#include "alg/regex/ruleset.hh"
#include "sim/random.hh"

using namespace snic;
using namespace snic::alg;

namespace {

std::vector<std::uint8_t>
randomBytes(std::size_t n, std::uint64_t seed)
{
    sim::Random rng(seed);
    std::vector<std::uint8_t> data(n);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());
    return data;
}

void
BM_DeflateCompress(benchmark::State &state)
{
    const auto level = static_cast<int>(state.range(0));
    sim::Random rng(1);
    // Mildly compressible input.
    std::vector<std::uint8_t> data(16384);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(
            rng.chance(0.7) ? (i % 64) : rng.next());
    const deflate::Deflate codec(level);
    for (auto _ : state) {
        WorkCounters w;
        benchmark::DoNotOptimize(codec.compress(data, w));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 16384);
}
BENCHMARK(BM_DeflateCompress)->Arg(1)->Arg(6)->Arg(9);

void
BM_AesCtr(benchmark::State &state)
{
    crypto::Aes128::Key key{};
    const crypto::Aes128 aes(key);
    const auto data = randomBytes(16384, 2);
    for (auto _ : state) {
        WorkCounters w;
        benchmark::DoNotOptimize(aes.ctr(data, 42, w));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 16384);
}
BENCHMARK(BM_AesCtr);

void
BM_Sha1(benchmark::State &state)
{
    const auto data = randomBytes(16384, 3);
    for (auto _ : state) {
        WorkCounters w;
        benchmark::DoNotOptimize(crypto::Sha1::digest(data, w));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 16384);
}
BENCHMARK(BM_Sha1);

void
BM_RsaDecrypt(benchmark::State &state)
{
    sim::Random rng(4);
    WorkCounters w;
    const auto key = crypto::Rsa::generate(256, rng, w);
    const auto c = crypto::Rsa::encrypt(
        crypto::Bignum::fromUint(123456789), key, w);
    for (auto _ : state) {
        WorkCounters inner;
        benchmark::DoNotOptimize(crypto::Rsa::decrypt(c, key, inner));
    }
}
BENCHMARK(BM_RsaDecrypt);

void
BM_DfaScan(benchmark::State &state)
{
    const auto id = static_cast<regex::RuleSetId>(state.range(0));
    const regex::RuleSet rules = regex::makeRuleSet(id);
    const regex::CompiledRuleSet compiled(rules);
    sim::Random rng(5);
    const auto payload = regex::synthesizePayload(rules, 1500, 0.1,
                                                  rng);
    for (auto _ : state) {
        WorkCounters w;
        benchmark::DoNotOptimize(compiled.dfa().scan(
            payload.data(), payload.size(), w));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 1500);
}
BENCHMARK(BM_DfaScan)
    ->Arg(static_cast<int>(regex::RuleSetId::FileImage))
    ->Arg(static_cast<int>(regex::RuleSetId::FileExecutable));

void
BM_KvGet(benchmark::State &state)
{
    kv::KvStore store;
    sim::Random rng(6);
    WorkCounters w;
    store.load(30000, 1024, rng, w);
    std::uint64_t i = 0;
    for (auto _ : state) {
        WorkCounters inner;
        kv::Op op{kv::OpType::Get,
                  kv::KvStore::keyFor(i++ % 30000),
                  {}};
        benchmark::DoNotOptimize(store.execute(op, inner));
    }
}
BENCHMARK(BM_KvGet);

} // anonymous namespace

BENCHMARK_MAIN();
