/**
 * @file
 * E6 — Sec. 3.3 microbenchmark table: UDP, DPDK and RDMA throughput
 * and p99 round-trip latency at 64 B and 1 KB on both platforms.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "sim/logging.hh"
#include "stats/summary.hh"

using namespace snic;
using namespace snic::core;

int
main()
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    ExperimentOptions opts;
    opts.targetSamples = 8000;

    stats::Table t("Sec. 3.3 — Networking-stack microbenchmarks");
    t.setHeader({"benchmark", "platform", "max Gbps", "max Mpps",
                 "p50 us", "p99 us"});

    const std::vector<std::string> ids = {
        "micro_udp_64",        "micro_udp_1024",
        "micro_dpdk_64",       "micro_dpdk_1024",
        "micro_rdma_read_64",   "micro_rdma_read_1024",
        "micro_rdma_write_64",  "micro_rdma_write_1024",
        "micro_rdma_send_64",   "micro_rdma_send_1024",
    };
    for (const auto &id : ids) {
        for (auto p : {hw::Platform::HostCpu, hw::Platform::SnicCpu}) {
            const auto r = runExperiment(id, p, opts);
            t.addRow({id, hw::platformName(p),
                      stats::Table::num(r.maxGbps, 2),
                      stats::Table::num(r.maxRps / 1e6, 2),
                      stats::Table::num(r.p50Us, 1),
                      stats::Table::num(r.p99Us, 1)});
        }
    }
    t.print();

    std::printf(
        "Anchors (Sec. 3.3/4): one core of either platform reaches "
        "100 Gbps with DPDK at 1 KB; the SNIC CPU loses 76.5-85.7%% "
        "of UDP throughput (KO1) but wins up to 1.4x on one-sided "
        "RDMA with 14.6-24.3%% lower p99.\n");
    return 0;
}
