/**
 * @file
 * What-if: on-package host accelerators (the KO2 discussion).
 *
 * The paper could not evaluate Sapphire Rapids' QAT/IAA/DSA engines
 * but "expect[s] these accelerators can provide higher performance
 * than the SNIC accelerators as they are backed by a more powerful
 * memory subsystem". This bench models such engines — the SNIC
 * engines' function blocks attached to the host's memory system
 * (twice the sustained rate, a fraction of the job latency, no PCIe
 * staging cores) — and replays the KO2 comparisons with a third
 * column.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "hw/accelerator.hh"
#include "hw/specs.hh"
#include "sim/logging.hh"
#include "stats/summary.hh"
#include "workloads/registry.hh"

using namespace snic;
using namespace snic::core;

namespace {

/** QAT-style engine: the PKA/Deflate blocks on the host ring bus. */
std::unique_ptr<hw::ExecutionPlatform>
makeHostEngine(sim::Simulation &s, hw::AccelKind kind)
{
    // Start from the SNIC engine's cost model...
    auto snic_engine = hw::makeAccelerator(s, kind);
    hw::CostModel m = snic_engine->costs();
    // ...and give it the host's memory system: twice the sustained
    // rate (six DDR4 channels vs one) and a far shorter job path
    // (no PCIe hop, no SNIC-CPU staging).
    m.perStreamByte /= 2.0;
    m.perCryptoBlock /= 2.0;
    m.perHashBlock /= 2.0;
    m.perBigMulOp /= 2.0;
    return std::make_unique<hw::ExecutionPlatform>(
        s, "host_engine", 2, m, /*setup_ns=*/300.0,
        /*pipeline_ns=*/900.0);
}

/** Throughput of an engine fed saturating jobs for 10 ms. */
double
engineGbps(hw::ExecutionPlatform &engine, const alg::WorkCounters &job,
           double job_bytes, sim::Simulation &s)
{
    const double service_ns = engine.serviceNs(job);
    const int jobs = static_cast<int>(
        10e6 / service_ns * engine.numWorkers() * 2.0);
    int completed = 0;
    for (int i = 0; i < jobs; ++i)
        engine.submit(job, i, [&] { ++completed; });
    s.runUntil(s.now() + sim::msToTicks(10.0));
    return completed * job_bytes * 8.0 / 0.010 / 1e9;
}

} // anonymous namespace

int
main()
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    ExperimentOptions opts;
    opts.targetSamples = 8000;

    stats::Table t("KO2 what-if — on-package host engines "
                   "(QAT/IAA-style) vs the measured platforms");
    t.setHeader({"function", "host CPU Gbps", "SNIC engine Gbps",
                 "host engine Gbps", "winner"});

    struct Case
    {
        const char *id;
        hw::AccelKind kind;
    };
    for (const Case &c :
         {Case{"crypto_aes", hw::AccelKind::Pka},
          Case{"crypto_sha1", hw::AccelKind::Pka},
          Case{"comp_app", hw::AccelKind::Compression}}) {
        const auto host =
            runExperiment(c.id, hw::Platform::HostCpu, opts);
        const auto snic =
            runExperiment(c.id, hw::Platform::SnicAccel, opts);

        // Drive the hypothetical host engine with the same job the
        // SNIC engine receives.
        sim::Simulation s(5);
        auto engine = makeHostEngine(s, c.kind);
        auto w = workloads::makeWorkload(c.id);
        sim::Random rng(5);
        w->setup(rng);
        const auto bytes = w->spec().sizes.sample(rng);
        const auto plan =
            w->plan(bytes, hw::Platform::SnicAccel, rng);
        const double host_engine_gbps =
            engineGbps(*engine, plan.accelWork,
                       static_cast<double>(bytes), s);

        const char *winner =
            host_engine_gbps > std::max(host.maxGbps, snic.maxGbps)
                ? "host engine"
                : (host.maxGbps > snic.maxGbps ? "host CPU"
                                               : "SNIC engine");
        t.addRow({c.id, stats::Table::num(host.maxGbps, 1),
                  stats::Table::num(snic.maxGbps, 1),
                  stats::Table::num(host_engine_gbps, 1), winner});
    }
    t.print();

    std::printf(
        "As the paper anticipates, an engine with the host's memory "
        "system beats the SNIC engine on every function — the SNIC's "
        "efficiency case then rests entirely on power, not peak "
        "performance.\n");
    return 0;
}
