/**
 * @file
 * E10 — Sec. 3.2 methodology: why the paper needed the custom
 * PCIe-riser + Yocto-Watt rig at all.
 *
 * (1) Resolution: a square-wave SNIC load (idle <-> fully active,
 *     a 5.4 W swing) is sampled by both instruments; the BMC's 1 W /
 *     1 Hz sensor barely resolves it, the 2 mW / 10 Hz rig does.
 * (2) Isolation: the with-vs-without-SNIC difference matches the
 *     rig's direct measurement across operating points.
 */

#include <cmath>
#include <cstdio>

#include "hw/server.hh"
#include "power/isolation.hh"
#include "power/power_model.hh"
#include "power/sensors.hh"
#include "sim/logging.hh"
#include "stats/summary.hh"

using namespace snic;
using namespace snic::power;

int
main()
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    sim::Simulation s(11);
    hw::ServerModel server(s);
    ServerPowerModel power(server);

    // Square-wave SNIC activity: 10 s period, full swing.
    auto snic_util_at = [&](sim::Tick t) {
        return (sim::ticksToSec(t) / 10.0 -
                std::floor(sim::ticksToSec(t) / 10.0)) < 0.5
                   ? 1.0
                   : 0.0;
    };
    auto snic_watts = [&] {
        return power.snicWattsAt(snic_util_at(s.now()),
                                 snic_util_at(s.now()), 40.0);
    };
    auto server_watts = [&] {
        return power.serverWattsAt(0.0, snic_util_at(s.now()),
                                   snic_util_at(s.now()), 40.0);
    };

    auto bmc = makeBmcSensor(s, server_watts);
    auto yocto12 = makeYoctoWattSensor(s, "yocto_12v", [&] {
        return snic_watts() * power.specs().snicTwelveVoltShare;
    });
    auto yocto33 = makeYoctoWattSensor(s, "yocto_3v3", [&] {
        return snic_watts() *
               (1.0 - power.specs().snicTwelveVoltShare);
    });
    const sim::Tick horizon = sim::secToTicks(60.0);
    bmc.start(horizon);
    yocto12.start(horizon);
    yocto33.start(horizon);
    s.runUntil(horizon + sim::secToTicks(1.0));

    const double true_swing =
        power.snicWattsAt(1.0, 1.0, 40.0) -
        power.snicWattsAt(0.0, 0.0, 40.0);
    stats::Table t("Sec. 3.2 — instrument comparison on a 10 s "
                   "square-wave SNIC load");
    t.setHeader({"instrument", "samples", "rate Hz", "step W",
                 "observed swing W"});
    t.addRow({"BMC/DCMI (server)", std::to_string(bmc.sampleCount()),
              "1", "1",
              stats::Table::num(bmc.observedSwing(), 3)});
    t.addRow({"Yocto-Watt 12V (SNIC)",
              std::to_string(yocto12.sampleCount()), "10", "0.002",
              stats::Table::num(yocto12.observedSwing(), 3)});
    t.addRow({"Yocto-Watt 3.3V (SNIC)",
              std::to_string(yocto33.sampleCount()), "10", "0.002",
              stats::Table::num(yocto33.observedSwing(), 3)});
    t.print();
    std::printf("true SNIC swing: %.3f W; riser rig resolves it to "
                "the milliwatt, the BMC sees it through +/-1 W of "
                "noise and quantization.\n\n",
                true_swing);

    const auto res = compareSensorResolution();
    std::printf("Resolution ratio BMC/Yocto = %.0fx, sampling ratio "
                "= %.0fx (the paper's '500x' and '10x').\n\n",
                res.resolutionRatio, res.samplingRatio);

    stats::Table iso("Sec. 3.2 — isolation validation "
                     "(with-SNIC minus without-SNIC vs riser)");
    iso.setHeader({"snic util", "difference W", "riser W",
                   "mismatch"});
    for (double util : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        const auto r = validateIsolation(power, 0.0, util, util, 20.0);
        iso.addRow({stats::Table::num(util, 2),
                    stats::Table::num(r.differenceWatts, 2),
                    stats::Table::num(r.riserWatts, 2),
                    stats::Table::percent(r.mismatchFraction * 100.0)});
    }
    iso.print();
    return 0;
}
