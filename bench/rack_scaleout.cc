/**
 * @file
 * E8 — rack scale-out sweep: aggregate capacity, tail latency and
 * dispatch imbalance for racks of 1..8 servers under each ToR
 * dispatch policy, on both platform sides.
 *
 * The fleet arithmetic of Sec. 6 divides demand by one server's
 * capacity; this sweep shows what that division hides. Scaling
 * efficiency is aggregate capacity over M times the 1-server
 * capacity: 100 % means the ToR never let a member idle while
 * another queued, and the flow-hash rows show how far an ECMP-style
 * static hash falls from that — especially with a hot flow pinned.
 */

#include <cstdio>
#include <vector>

#include "core/rack.hh"
#include "core/runner.hh"
#include "sim/logging.hh"
#include "stats/summary.hh"

using namespace snic;
using namespace snic::core;

namespace {

void
sweepSide(ExperimentRunner &runner, const char *label,
          hw::Platform platform)
{
    const std::vector<unsigned> sizes{1, 2, 4, 8};
    const std::vector<net::DispatchPolicy> policies{
        net::DispatchPolicy::RoundRobin,
        net::DispatchPolicy::Random,
        net::DispatchPolicy::Random2Choice,
        net::DispatchPolicy::FlowHash,
        net::DispatchPolicy::LeastQueue,
    };

    ExperimentOptions opts;
    opts.targetSamples = 6000;
    opts.warmup = sim::msToTicks(1.0);
    opts.minWindow = sim::msToTicks(2.0);

    std::vector<RackCell> cells;
    // The 1-server baseline (policy-independent: pass-through).
    {
        RackCell cell;
        cell.config.workloadId = "micro_udp_1024";
        cell.config.platform = platform;
        cell.config.servers = 1;
        cell.config.policy = net::DispatchPolicy::PassThrough;
        cell.opts = opts;
        cell.costHint = 1.0;
        cells.push_back(cell);
    }
    for (const unsigned m : sizes) {
        if (m == 1)
            continue;
        for (const auto policy : policies) {
            RackCell cell;
            cell.config.workloadId = "micro_udp_1024";
            cell.config.platform = platform;
            cell.config.servers = m;
            cell.config.policy = policy;
            // A modest hot flow for the hash rows: skew is the
            // realistic adversary of static dispatch.
            cell.config.hotFlowFraction =
                policy == net::DispatchPolicy::FlowHash ? 0.2 : 0.0;
            cell.opts = opts;
            // Bigger racks simulate more events per window: start
            // them first so the batch tail stays short.
            cell.costHint = static_cast<double>(m);
            cells.push_back(cell);
        }
    }

    const auto results = runner.runRackCells(cells);
    const double single = results.front().maxGbps;

    stats::Table t(std::string("Rack scale-out — micro_udp_1024, ") +
                   label);
    t.setHeader({"servers", "policy", "agg Gbps", "scale eff",
                 "p99 us", "imbalance", "rack W"});
    for (const auto &r : results) {
        const double ideal = single * r.config.servers;
        t.addRow({std::to_string(r.config.servers),
                  net::dispatchPolicyName(r.config.policy),
                  stats::Table::num(r.maxGbps, 2),
                  stats::Table::percent(
                      ideal > 0.0 ? 100.0 * r.maxGbps / ideal : 0.0),
                  stats::Table::num(r.p99Us, 1),
                  stats::Table::num(r.imbalance, 2),
                  stats::Table::num(r.rackWatts, 1)});
    }
    t.print();
}

} // anonymous namespace

int
main()
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    ExperimentRunner runner;

    sweepSide(runner, "host side", hw::Platform::HostCpu);
    sweepSide(runner, "SNIC CPU side", hw::Platform::SnicCpu);

    std::printf(
        "Scaling efficiency under round-robin/least-queue stays near "
        "100%%: the rack is M independent servers when dispatch is "
        "balanced. The flow-hash rows pay for hash skew (and for the "
        "pinned hot flow) in both capacity and tail — the gap the "
        "ceil(demand/capacity) fleet arithmetic cannot see.\n");
    return 0;
}
