/**
 * @file
 * Strategy 2 validation: how accurate is the analytic offload
 * advisor against the simulated ground truth?
 *
 * Clara-style a-priori prediction is only useful if its capacity and
 * latency estimates track reality; this bench quantifies the error
 * per (function, platform) cell and checks that the advisor's
 * *ranking* (which platform wins) matches measurement.
 */

#include <cmath>
#include <cstdio>

#include "core/advisor.hh"
#include "core/experiment.hh"
#include "sim/logging.hh"
#include "stats/summary.hh"

using namespace snic;
using namespace snic::core;

int
main()
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    ExperimentOptions opts;
    opts.targetSamples = 8000;

    stats::Table t("Strategy 2 — advisor prediction vs measurement");
    t.setHeader({"function", "platform", "pred Gbps", "meas Gbps",
                 "error", "ranking ok"});

    int ranking_hits = 0, ranking_total = 0;
    double abs_err_sum = 0.0;
    int cells = 0;

    for (const char *id :
         {"micro_udp_1024", "redis_c", "nat_10k", "mica_b32",
          "crypto_rsa", "crypto_sha1", "rem_img", "rem_exe",
          "comp_app"}) {
        const Advice advice = adviseOffload(id, SloConstraint{});

        // Measure both sides the advisor compared.
        double best_measured = -1.0;
        hw::Platform best_measured_platform = hw::Platform::HostCpu;
        struct Cell
        {
            hw::Platform platform;
            double pred;
            double meas;
        };
        std::vector<Cell> cells_here;
        for (const auto &pred : advice.predictions) {
            if (!pred.supported)
                continue;
            const auto r = runExperiment(id, pred.platform, opts);
            cells_here.push_back(
                {pred.platform, pred.capacityGbps, r.maxGbps});
            if (r.maxGbps > best_measured) {
                best_measured = r.maxGbps;
                best_measured_platform = pred.platform;
            }
        }

        // The advisor's best-capacity platform.
        double best_pred = -1.0;
        hw::Platform best_pred_platform = hw::Platform::HostCpu;
        for (const auto &pred : advice.predictions) {
            if (pred.supported && pred.capacityGbps > best_pred) {
                best_pred = pred.capacityGbps;
                best_pred_platform = pred.platform;
            }
        }
        const bool ranking_ok =
            best_pred_platform == best_measured_platform;
        ranking_hits += ranking_ok;
        ++ranking_total;

        for (const auto &cell : cells_here) {
            const double err =
                cell.meas > 0.0
                    ? (cell.pred - cell.meas) / cell.meas
                    : 0.0;
            abs_err_sum += std::abs(err);
            ++cells;
            t.addRow({id, hw::platformName(cell.platform),
                      stats::Table::num(cell.pred, 1),
                      stats::Table::num(cell.meas, 1),
                      stats::Table::percent(err * 100.0),
                      ranking_ok ? "yes" : "NO"});
        }
    }
    t.print();

    std::printf("mean |capacity error| = %.1f%%; platform ranking "
                "correct on %d/%d functions.\n",
                100.0 * abs_err_sum / cells, ranking_hits,
                ranking_total);
    std::printf(
        "The analytic model inherits the simulator's cost tables, so "
        "its errors come from queueing and dispatch effects it "
        "ignores — small enough to rank platforms correctly, which "
        "is all Strategy 2 needs.\n");
    return 0;
}
