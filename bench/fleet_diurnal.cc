/**
 * @file
 * E19 — fleet-scale diurnal serving: autoscaler policy x fleet mix,
 * TCO-per-SLO curves over a compressed 24 h synthetic day.
 *
 * Table 5 prices fleets at one steady operating point; a real fleet
 * lives a diurnal day where the night trough is a fraction of the
 * peak. This sweep replays the net/dc_trace day against three fleet
 * mixes (host-only, SNIC-only, mixed) under three autoscaling
 * policies (static peak provisioning, reactive utilization
 * thresholds, p99-SLO feedback), and reports what each combination
 * actually costs: per-rack energy of the represented day, the
 * minutes spent outside the p99 budget, and the 5-year TCO.
 *
 * The question the sweep answers: does SLO-aware scale-down buy TCO
 * without giving back SLO attainment — and on which side of the
 * PCIe bus is the win bigger?
 *
 * --smoke runs a compressed 1 h trace (CI-sized).
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/fleet.hh"
#include "core/runner.hh"
#include "net/dc_trace.hh"
#include "sim/logging.hh"
#include "stats/summary.hh"

using namespace snic;
using namespace snic::core;

namespace {

struct Mix
{
    const char *name;
    std::vector<hw::Platform> rackPlatforms;
};

struct Policy
{
    const char *name;
    AutoscalerKind kind;
};

/** Per-member sustainable rate (Gbps) from the analytic estimator —
 *  used only to size the trace, not as a measurement. */
double
perMemberGbps(const std::string &workload, hw::Platform platform)
{
    RackConfig rc;
    rc.workloadId = workload;
    rc.platform = platform;
    rc.servers = 1;
    rc.policy = net::DispatchPolicy::PassThrough;
    Rack probe(rc);
    return probe.estimateCapacityRps() * probe.meanRequestBytes() *
           8.0 / 1e9;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    const std::string workload = "micro_udp_1024";
    const unsigned members_per_rack = 4;

    // The synthetic day, one rate series per rack. Bursts are kept
    // at 2x so a scaled-down rack with one spare member of headroom
    // can ride them out — the regime where policy quality, not raw
    // provisioning, decides the SLO.
    const std::size_t bins = smoke ? 12 : 72;
    const double real_day_secs = smoke ? 3600.0 : 86400.0;
    const sim::Tick bin_ticks =
        smoke ? sim::msToTicks(2.0) : sim::msToTicks(10.0);

    const std::vector<Mix> mixes{
        {"host-only", {hw::Platform::HostCpu, hw::Platform::HostCpu}},
        {"snic-only", {hw::Platform::SnicCpu, hw::Platform::SnicCpu}},
        {"mixed", {hw::Platform::HostCpu, hw::Platform::SnicCpu}},
    };
    const std::vector<Policy> policies{
        {"static", AutoscalerKind::Static},
        {"reactive_util", AutoscalerKind::ReactiveUtilization},
        {"p99_feedback", AutoscalerKind::P99Feedback},
    };

    std::vector<FleetCell> cells;
    for (const Mix &mix : mixes) {
        // Size the day to the weakest rack of the mix: mean at 45 %
        // of its full-rack capacity, so the trough invites sleep and
        // the peak still fits.
        double weakest = 1e18;
        for (hw::Platform p : mix.rackPlatforms)
            weakest = std::min(weakest, perMemberGbps(workload, p));
        const double rack_capacity = weakest * members_per_rack;

        net::DcTraceParams tp;
        tp.meanGbps = 0.45 * rack_capacity;
        tp.diurnalSwing = 0.6;
        tp.noiseSigma = 0.10;
        tp.burstProbability = 0.05;
        tp.burstMultiplier = 2.0;
        tp.peakGbps = 0.85 * rack_capacity;
        tp.bins = bins;
        sim::Random trace_rng(42);
        const std::vector<double> trace = makeDcTrace(tp, trace_rng);

        for (const Policy &pol : policies) {
            FleetCell cell;
            FleetConfig &fc = cell.config;
            for (hw::Platform p : mix.rackPlatforms) {
                RackConfig rc;
                rc.workloadId = workload;
                rc.platform = p;
                rc.servers = members_per_rack;
                rc.policy = net::DispatchPolicy::LeastQueue;
                rc.seed = 1;
                fc.racks.push_back(rc);
            }
            fc.autoscaler.kind = pol.kind;
            fc.autoscaler.minMembers = 1;
            fc.autoscaler.upUtil = 0.65;
            fc.autoscaler.downUtil = 0.30;
            fc.autoscaler.p99BudgetUs = 500.0;
            fc.autoscaler.p99LowFraction = 0.5;
            // Cover the 2x microbursts plus the lognormal noise: the
            // p99 policy keeps that much spare capacity awake.
            fc.autoscaler.burstHeadroom = 2.2;
            fc.autoscaler.hysteresisBins = 1;
            fc.autoscaler.cooldownBins = 3;
            fc.traceGbps = trace;
            fc.binTicks = bin_ticks;
            fc.realSecondsPerBin =
                real_day_secs / static_cast<double>(bins);
            fc.sloP99BudgetUs = 500.0;
            fc.wakeLatencyUs = 1000.0;
            fc.seed = 1;
            cell.costHint = pol.kind == AutoscalerKind::Static
                                ? 2.0  // most members awake: most events
                                : 1.0;
            cells.push_back(cell);
        }
    }

    ExperimentRunner runner;
    const std::vector<FleetResult> results = runner.runFleetCells(cells);

    stats::Table t(std::string("Fleet diurnal day — ") + workload +
                   (smoke ? " (smoke: 1 h trace)" : " (24 h trace)"));
    t.setHeader({"mix", "policy", "completed", "SLO viol min",
                 "kWh/day", "mean pow", "asleep %", "scale evts",
                 "capex $", "energy $/5y", "TCO $/5y"});

    std::size_t idx = 0;
    // TCO-per-SLO dominance check: per mix, does p99_feedback beat
    // static on TCO at equal-or-better SLO attainment?
    int dominated_mixes = 0;
    for (const Mix &mix : mixes) {
        double static_tco = 0.0, static_viol = 0.0;
        double p99_tco = 0.0, p99_viol = 0.0;
        for (const Policy &pol : policies) {
            const FleetResult &r = results[idx++];
            double mean_pow = 0.0, asleep_ticks = 0.0;
            for (const FleetRackResult &rr : r.racks) {
                mean_pow += rr.meanDispatchable;
                asleep_ticks += static_cast<double>(rr.asleepTicks);
            }
            const double member_day_ticks =
                static_cast<double>(bin_ticks) *
                static_cast<double>(bins) *
                static_cast<double>(r.racks.size() *
                                    members_per_rack);
            const double asleep_pct =
                member_day_ticks > 0.0
                    ? 100.0 * asleep_ticks / member_day_ticks
                    : 0.0;
            t.addRow({mix.name, pol.name,
                      std::to_string(r.completed),
                      stats::Table::num(r.sloViolationMinutes, 1),
                      stats::Table::num(r.realKwh, 2),
                      stats::Table::num(mean_pow, 2),
                      stats::Table::num(asleep_pct, 1),
                      std::to_string(r.events.size()),
                      stats::Table::num(r.capexUsd, 0),
                      stats::Table::num(r.energyUsd5yr, 0),
                      stats::Table::num(r.tcoUsd5yr, 0)});
            if (pol.kind == AutoscalerKind::Static) {
                static_tco = r.tcoUsd5yr;
                static_viol = r.sloViolationMinutes;
            } else if (pol.kind == AutoscalerKind::P99Feedback) {
                p99_tco = r.tcoUsd5yr;
                p99_viol = r.sloViolationMinutes;
            }
        }
        if (p99_tco < static_tco && p99_viol <= static_viol)
            ++dominated_mixes;
    }
    t.print();

    std::printf(
        "p99_feedback dominates static (lower TCO, no worse SLO "
        "minutes) in %d of %zu mixes. The gap is the datacenter tax "
        "of peak provisioning: every member the policy dares to put "
        "to sleep through the trough is idle power Table 5's "
        "steady-state arithmetic charges forever.\n",
        dominated_mixes, mixes.size());
    return 0;
}
