/**
 * @file
 * sim_speed — raw simulator speed harness (the repo's perf
 * trajectory, see ROADMAP "fleet-scale sweeps").
 *
 * Replays representative cells from the paper benches — a Fig-4
 * function testbed, a Fig-5 REM point (accelerator + coalescing),
 * and rack_scaleout at M=8/32 — at a fixed offered load, and reports
 * **events/sec and requests/sec** into BENCH_sim_speed.json. The
 * headline cell is rack_m32: a 32-member rack on one shared timeline,
 * the shape every fleet-scale sweep is built from.
 *
 * The committed bench/sim_speed_baseline.json records two things per
 * cell: `pre_pr_events_per_sec`, the binary-heap scheduler measured
 * by this same harness before the timer-wheel landed (frozen history
 * — the denominator of the speedup column), and
 * `expected_events_per_sec`, the current scheduler on the reference
 * dev machine derated 2x so slower CI runners don't trip it. With
 * --check the run fails when any cell drops below 80 % of expected —
 * the >20 % regression gate CI enforces.
 *
 * Modes:
 *   sim_speed                 full windows, 3 reps, best-of
 *   sim_speed --quick         short windows, 1 rep (CI)
 *   sim_speed --out F         write the JSON report to F
 *   sim_speed --baseline F    read baseline numbers from F
 *   sim_speed --write-baseline F  emit a fresh baseline file
 *   sim_speed --check         exit 1 on >20 % regression vs expected
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "alg/kv/front_cache.hh"
#include "core/rack.hh"
#include "core/testbed.hh"
#include "net/tor_switch.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "workloads/nicache.hh"

using namespace snic;
using namespace snic::core;

namespace {

struct CellResult
{
    std::string name;
    std::string what;
    std::uint64_t events = 0;
    std::uint64_t requests = 0;
    double wallSec = 0.0;
    double eventsPerSec = 0.0;
    double requestsPerSec = 0.0;
    /** From the baseline file (0 = not found). */
    double prePrEventsPerSec = 0.0;
    double expectedEventsPerSec = 0.0;

    double
    speedupVsPrePr() const
    {
        return prePrEventsPerSec > 0.0
                   ? eventsPerSec / prePrEventsPerSec
                   : 0.0;
    }
};

/** Wall-clock one run of @p body, which must return (events fired,
 *  requests completed) for the window it simulated. */
template <typename Body>
CellResult
timeCell(const char *name, const char *what, int reps, Body &&body)
{
    CellResult best;
    best.name = name;
    best.what = what;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto [events, requests] = body();
        const auto t1 = std::chrono::steady_clock::now();
        const double sec =
            std::chrono::duration<double>(t1 - t0).count();
        const double eps =
            sec > 0.0 ? static_cast<double>(events) / sec : 0.0;
        if (eps > best.eventsPerSec) {
            best.events = events;
            best.requests = requests;
            best.wallSec = sec;
            best.eventsPerSec = eps;
            best.requestsPerSec =
                sec > 0.0 ? static_cast<double>(requests) / sec : 0.0;
        }
    }
    std::printf("  %-22s %9.3fs  %12llu ev  %8.3g ev/s  %8.3g req/s\n",
                name, best.wallSec,
                static_cast<unsigned long long>(best.events),
                best.eventsPerSec, best.requestsPerSec);
    return best;
}

/** One single-server testbed cell at a fixed offered load. */
std::pair<std::uint64_t, std::uint64_t>
runTestbedCell(const std::string &workload, hw::Platform platform,
               double gbps, sim::Tick window)
{
    TestbedConfig cfg;
    cfg.workloadId = workload;
    cfg.platform = platform;
    Testbed bed(cfg);
    const Measurement m =
        bed.measure(gbps, sim::msToTicks(1.0), window);
    return {bed.sim().events().numFired(), m.completed};
}

/** One rack cell at a fixed aggregate load. */
std::pair<std::uint64_t, std::uint64_t>
runRackCell(unsigned servers, net::DispatchPolicy policy,
            double per_server_gbps, sim::Tick window)
{
    RackConfig cfg;
    cfg.workloadId = "micro_udp_1024";
    cfg.platform = hw::Platform::HostCpu;
    cfg.servers = servers;
    cfg.policy = policy;
    Rack rack(cfg);
    const RackMeasurement m = rack.measure(
        per_server_gbps * servers, sim::msToTicks(1.0), window);
    return {rack.sim().events().numFired(), m.aggregate.completed};
}

/** A 2-member rack running a chain that spans both members: every
 *  record takes the cross-member RackTransferStage path (ToR
 *  forwarding + wire serialization on the neighbor's uplink). */
std::pair<std::uint64_t, std::uint64_t>
runRackChainCell(double gbps, sim::Tick window)
{
    RackConfig cfg;
    cfg.chain.then("rem_img", hw::Platform::SnicAccel)
        .then("rem_img", hw::Platform::SnicAccel, 1);
    cfg.servers = 2;
    cfg.policy = net::DispatchPolicy::RoundRobin;
    Rack rack(cfg);
    const RackMeasurement m =
        rack.measure(gbps, sim::msToTicks(1.0), window);
    return {rack.sim().events().numFired(), m.aggregate.completed};
}

/** The XDP front-cache cell: every packet runs the verdict hook
 *  (NIC-side program dispatch + cache probe), hits exit through the
 *  egress bypass, misses stack the kernel path on top — the XDP
 *  tier's distinctive event mix. */
std::pair<std::uint64_t, std::uint64_t>
runNicacheCell(double gbps, sim::Tick window)
{
    TestbedConfig cfg;
    cfg.workloadId = "nicache_get";
    auto cache = std::make_shared<alg::kv::FrontCache>(
        workloads::NicacheGet::records / 10);
    auto rng = std::make_shared<sim::Random>(99);
    cfg.xdpVerdict = [cache, rng](const net::Packet &pkt) {
        const std::uint64_t key = net::hotKeyCollapse(
            pkt.flowHash, workloads::NicacheGet::records, 0.5, *rng);
        XdpOutcome out;
        if (const auto hit = cache->lookup(key)) {
            out.verdict = XdpVerdict::NicServe;
            out.responseBytes = 8 + *hit;
        } else {
            cache->insert(key, workloads::NicacheGet::valueBytes);
        }
        return out;
    };
    Testbed bed(cfg);
    const Measurement m =
        bed.measure(gbps, sim::msToTicks(1.0), window);
    return {bed.sim().events().numFired(), m.completed};
}

/**
 * Scheduler-only churn: no datapath, just the EventQueue under a
 * fleet-shaped op mix — a few thousand events pending, mixed horizons
 * (mostly short, some microsecond-scale, a rare far tail), a cancel
 * for ~2 % of schedules. This is the cell that isolates the scheduler
 * rewrite itself; the testbed cells above measure it diluted by the
 * modelled datapath. The op sequence is a fixed LCG, so the fired
 * count is one more cross-implementation determinism check.
 *
 * Returns (events fired, events scheduled).
 */
std::pair<std::uint64_t, std::uint64_t>
runSchedChurn(std::uint64_t target_fires)
{
    sim::EventQueue q;
    std::uint64_t lcg = 0x9e3779b97f4a7c15ull;
    auto rnd = [&lcg] {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return lcg >> 33;
    };
    std::vector<sim::EventId> cancelable;
    std::uint64_t scheduled = 0;
    while (q.numFired() < target_fires) {
        while (q.numPending() < 4096) {
            const std::uint64_t r = rnd();
            sim::Tick horizon;
            switch (r & 7) {
              case 0:  // ~µs at 1 ps/tick: the link/service scale
                horizon = 1 + (r >> 8) % 1000000;
                break;
              case 1:  // far tail (timeouts, sensors)
                horizon = 1 + (r >> 8) % 100000000;
                break;
              default:  // short: typical inter-event distance
                horizon = 1 + (r >> 8) % 4000;
                break;
            }
            const sim::EventId id =
                q.schedule(q.curTick() + horizon, [] {});
            ++scheduled;
            if ((r & 63) == 5)
                cancelable.push_back(id);
        }
        for (const sim::EventId id : cancelable)
            q.deschedule(id);
        cancelable.clear();
        q.runUntil(q.curTick() + 50000);
    }
    return {q.numFired(), scheduled};
}

/** Pull `"cell": { ... "key": <num> ... }` out of a baseline file
 *  written by --write-baseline (rigid format, no general JSON). */
double
baselineNumber(const std::string &text, const std::string &cell,
               const std::string &key)
{
    const auto cell_at = text.find("\"" + cell + "\"");
    if (cell_at == std::string::npos)
        return 0.0;
    const auto end = text.find('}', cell_at);
    const auto key_at = text.find("\"" + key + "\"", cell_at);
    if (key_at == std::string::npos || key_at > end)
        return 0.0;
    const auto colon = text.find(':', key_at);
    if (colon == std::string::npos)
        return 0.0;
    return std::strtod(text.c_str() + colon + 1, nullptr);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return {};
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);

    bool quick = false;
    bool check = false;
    std::string out = "BENCH_sim_speed.json";
    std::string baseline_path = "bench/sim_speed_baseline.json";
    std::string write_baseline;
    std::string only;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                sim::fatal("sim_speed: %s needs a value", flag);
            return argv[++i];
        };
        if (arg == "--quick")
            quick = true;
        else if (arg == "--check")
            check = true;
        else if (arg == "--out")
            out = value("--out");
        else if (arg == "--baseline")
            baseline_path = value("--baseline");
        else if (arg == "--write-baseline")
            write_baseline = value("--write-baseline");
        else if (arg == "--only")
            only = value("--only");
        else
            sim::fatal("sim_speed: unknown argument %s", arg.c_str());
    }

    const int reps = quick ? 1 : 3;
    const sim::Tick bed_window =
        quick ? sim::msToTicks(5.0) : sim::msToTicks(25.0);
    const sim::Tick rack_window =
        quick ? sim::msToTicks(2.0) : sim::msToTicks(10.0);

    std::printf("sim_speed (%s): events/sec and requests/sec per "
                "cell, best of %d\n",
                quick ? "quick" : "full", reps);

    std::vector<CellResult> cells;
    auto addCell = [&](const char *name, const char *what,
                       auto &&body) {
        if (!only.empty() && only != name)
            return;
        cells.push_back(timeCell(name, what, reps, body));
    };
    addCell("fig4_micro_udp_host",
            "Fig-4 micro_udp_1024 on the host CPU, 6 Gbps open loop",
            [&] {
                return runTestbedCell("micro_udp_1024",
                                      hw::Platform::HostCpu, 6.0,
                                      bed_window);
            });
    addCell("fig5_rem_snic",
            "Fig-5 rem_img_mtu on the SNIC engine (coalescing), "
            "20 Gbps",
            [&] {
                return runTestbedCell("rem_img_mtu",
                                      hw::Platform::SnicAccel, 20.0,
                                      bed_window);
            });
    addCell("rack_m8", "rack_scaleout M=8 round_robin, 6 Gbps/server",
            [&] {
                return runRackCell(8, net::DispatchPolicy::RoundRobin,
                                   6.0, rack_window);
            });
    addCell("rack_m32",
            "rack_scaleout M=32 round_robin, 6 Gbps/server",
            [&] {
                return runRackCell(32, net::DispatchPolicy::RoundRobin,
                                   6.0, rack_window);
            });
    addCell("sched_churn",
            "scheduler-only: 4k pending, mixed horizons, 2% cancels "
            "(no datapath)",
            [&] {
                return runSchedChurn(quick ? 300000ull : 2000000ull);
            });
    addCell("rack_m32_least_queue",
            "rack_scaleout M=32 least_queue (probe-heavy), "
            "6 Gbps/server",
            [&] {
                return runRackCell(32, net::DispatchPolicy::LeastQueue,
                                   6.0, rack_window);
            });
    addCell("rack_chain_span",
            "2-member spanning REM chain (ToR hop per record), "
            "20 Gbps",
            [&] { return runRackChainCell(20.0, rack_window); });
    addCell("nicache_hotkey",
            "XDP in-NIC front cache, hot-key skew 0.5, 2 Gbps "
            "of 64 B GETs",
            [&] { return runNicacheCell(2.0, bed_window); });

    // Attach baseline numbers (absent file: columns stay 0/omitted).
    const std::string baseline = readFile(baseline_path);
    for (CellResult &c : cells) {
        c.prePrEventsPerSec =
            baselineNumber(baseline, c.name, "pre_pr_events_per_sec");
        c.expectedEventsPerSec = baselineNumber(
            baseline, c.name, "expected_events_per_sec");
    }

    {
        std::ofstream j(out);
        if (!j)
            sim::fatal("sim_speed: cannot write %s", out.c_str());
        j << "{\n  \"bench\": \"sim_speed\",\n";
        j << "  \"mode\": \"" << (quick ? "quick" : "full")
          << "\",\n";
        j << "  \"notes\": [\n"
             "    \"rack_m32_least_queue: the ToR member probe is now "
             "one batched pass over live members instead of a "
             "per-member std::function call per packet; paired "
             "best-of-8 A/B puts the least_queue penalty vs "
             "round_robin at ~15% (was ~19% with scalar probes), "
             "~5% more events/sec on this cell\"\n"
             "  ],\n";
        j << "  \"cells\": [\n";
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const CellResult &c = cells[i];
            char buf[1024];
            std::snprintf(
                buf, sizeof buf,
                "    {\"name\": \"%s\",\n"
                "     \"what\": \"%s\",\n"
                "     \"events\": %llu, \"requests\": %llu,\n"
                "     \"wall_sec\": %.6f,\n"
                "     \"events_per_sec\": %.6g,\n"
                "     \"requests_per_sec\": %.6g",
                c.name.c_str(), c.what.c_str(),
                static_cast<unsigned long long>(c.events),
                static_cast<unsigned long long>(c.requests),
                c.wallSec, c.eventsPerSec, c.requestsPerSec);
            j << buf;
            if (c.prePrEventsPerSec > 0.0) {
                std::snprintf(
                    buf, sizeof buf,
                    ",\n     \"pre_pr_events_per_sec\": %.6g,\n"
                    "     \"speedup_vs_pre_pr\": %.3f",
                    c.prePrEventsPerSec, c.speedupVsPrePr());
                j << buf;
            }
            j << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
        }
        j << "  ]\n}\n";
        std::printf("wrote %s\n", out.c_str());
    }

    if (!write_baseline.empty()) {
        std::ofstream j(write_baseline);
        if (!j)
            sim::fatal("sim_speed: cannot write %s",
                       write_baseline.c_str());
        j << "{\n  \"note\": \"pre_pr = binary-heap scheduler "
             "(frozen); expected = current scheduler on the "
             "reference machine / 2 (CI hardware headroom)\",\n"
             "  \"cells\": {\n";
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const CellResult &c = cells[i];
            char buf[512];
            std::snprintf(
                buf, sizeof buf,
                "    \"%s\": {\"pre_pr_events_per_sec\": %.6g, "
                "\"expected_events_per_sec\": %.6g}%s\n",
                c.name.c_str(),
                c.prePrEventsPerSec > 0.0 ? c.prePrEventsPerSec
                                          : c.eventsPerSec,
                c.eventsPerSec / 2.0,
                i + 1 < cells.size() ? "," : "");
            j << buf;
        }
        j << "  }\n}\n";
        std::printf("wrote %s\n", write_baseline.c_str());
    }

    if (check) {
        bool ok = true;
        for (const CellResult &c : cells) {
            if (c.expectedEventsPerSec <= 0.0) {
                std::printf("check: %s has no expected baseline — "
                            "skipping\n",
                            c.name.c_str());
                continue;
            }
            const double floor = 0.8 * c.expectedEventsPerSec;
            if (c.eventsPerSec < floor) {
                std::printf("check: REGRESSION %s: %.3g ev/s < 80%% "
                            "of expected %.3g\n",
                            c.name.c_str(), c.eventsPerSec,
                            c.expectedEventsPerSec);
                ok = false;
            }
        }
        if (!ok)
            return 1;
        std::printf("check: all cells within 20%% of baseline\n");
    }
    return 0;
}
