/**
 * @file
 * E3 — Fig. 6: average power consumption (server and SNIC breakdown)
 * and normalized energy efficiency at each function's maximum-
 * throughput point.
 */

#include <cstdio>

#include "core/report.hh"
#include "core/runner.hh"
#include "sim/logging.hh"

using namespace snic;
using namespace snic::core;

int
main(int argc, char **argv)
{
    const bool csv = stats::Table::wantCsv(argc, argv);
    sim::setLogLevel(sim::LogLevel::Quiet);
    ExperimentOptions opts;
    opts.targetSamples = 8000;

    stats::Table t("Fig. 6 — Power and Normalized Energy Efficiency");
    t.setHeader({"function", "host W", "host SNIC W", "snic-run W",
                 "snic-run SNIC W", "host active W", "snic active W",
                 "eff SNIC/host", "paper"});

    // The Fig. 6 x-axis: a representative subset of every family.
    const std::vector<std::string> functions = {
        "micro_udp_1024", "micro_rdma_read_1024", "redis_a",
        "snort_exe", "nat_10k", "bm25_1k", "mica_b32", "fio_read",
        "fio_write", "crypto_aes", "crypto_rsa", "crypto_sha1",
        "rem_img", "rem_exe", "comp_app", "comp_txt", "ovs_100",
    };

    // One (function x platform) batch for the whole figure.
    ExperimentRunner runner;
    const auto rows = compareOnPlatforms(functions, runner, opts);

    double eff_lo = 1e9, eff_hi = 0.0;
    for (std::size_t i = 0; i < functions.size(); ++i) {
        const auto &id = functions[i];
        const auto &row = rows[i];
        const auto band = paper::fig6EfficiencyExpectation(id);
        eff_lo = std::min(eff_lo, row.efficiencyRatio);
        eff_hi = std::max(eff_hi, row.efficiencyRatio);
        t.addRow({
            id,
            stats::Table::num(row.host.energy.avgServerWatts, 1),
            stats::Table::num(row.host.energy.avgSnicWatts, 1),
            stats::Table::num(row.snic.energy.avgServerWatts, 1),
            stats::Table::num(row.snic.energy.avgSnicWatts, 1),
            stats::Table::num(row.host.energy.avgServerWatts -
                                  paper::serverIdleW,
                              1),
            stats::Table::num(row.snic.energy.avgServerWatts -
                                  paper::serverIdleW,
                              1),
            stats::Table::ratio(row.efficiencyRatio),
            bandCheck(row.efficiencyRatio, band),
        });
    }
    t.print(csv);

    std::printf("Idle anchors: server %.0f W, SNIC %.0f W "
                "(paper: %.0f W / %.0f W). Measured efficiency range "
                "%.2fx-%.2fx (paper %.1fx-%.1fx).\n",
                252.0, 29.0, paper::serverIdleW, paper::snicIdleW,
                eff_lo, eff_hi, paper::fig6EffLo, paper::fig6EffHi);
    return 0;
}
