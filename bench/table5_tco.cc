/**
 * @file
 * E5 — Table 5: 5-year TCO for fio, OvS, REM and Compress, comparing
 * a 10-server SNIC fleet against a NIC fleet sized for the same
 * demand.
 *
 * Two passes: first with the paper's published per-server power and
 * throughput inputs (validating the TCO arithmetic against the
 * printed table), then with this testbed's own measurements.
 */

#include <cstdio>

#include "core/calibration.hh"
#include "core/report.hh"
#include "core/tco.hh"
#include "net/dc_trace.hh"
#include "sim/logging.hh"

using namespace snic;
using namespace snic::core;

namespace {

void
printRow(stats::Table &t, const TcoRow &row, double paper_savings)
{
    t.addRow({
        row.application,
        std::to_string(row.snic.servers),
        std::to_string(row.nic.servers),
        stats::Table::num(row.snic.powerPerServerW, 0),
        stats::Table::num(row.nic.powerPerServerW, 0),
        stats::Table::num(row.snic.fiveYearTcoUsd, 0),
        stats::Table::num(row.nic.fiveYearTcoUsd, 0),
        stats::Table::percent(row.savingsFraction * 100.0),
        stats::Table::percent(paper_savings * 100.0),
    });
}

void
header(stats::Table &t)
{
    t.setHeader({"application", "SNIC srv", "NIC srv", "SNIC W",
                 "NIC W", "SNIC 5y TCO $", "NIC 5y TCO $",
                 "savings", "paper"});
}

} // anonymous namespace

int
main()
{
    sim::setLogLevel(sim::LogLevel::Quiet);

    // Pass 1: the paper's own inputs (Table 5 row data).
    stats::Table published("Table 5 — TCO from the paper's inputs");
    header(published);
    printRow(published, computeRow("fio", 257, 343, 1.0, 1.0),
             paper::table5FioSavings);
    printRow(published, computeRow("ovs", 255, 328, 1.0, 1.0),
             paper::table5OvsSavings);
    printRow(published, computeRow("rem", 255, 268, 1.0, 1.0),
             paper::table5RemSavings);
    printRow(published, computeRow("compress", 255, 269, 3.5, 1.0),
             paper::table5CompressSavings);
    published.print();

    // Pass 2: this testbed's measured powers and throughputs.
    stats::Table measured(
        "Table 5 — TCO from this reproduction's measurements");
    header(measured);
    ExperimentOptions opts;
    opts.targetSamples = 8000;
    struct Cell
    {
        const char *label;
        const char *id;
        double paper;
        /** REM serves the Sec. 5.1 trace, where both platforms
         *  deliver the same (low) throughput and power is measured
         *  at the trace operating point — the paper's methodology
         *  for that row. */
        bool at_trace_point;
    };
    for (const Cell &cell :
         {Cell{"fio", "fio_read", paper::table5FioSavings, false},
          Cell{"ovs", "ovs_100", paper::table5OvsSavings, false},
          Cell{"rem", "rem_exe_mtu", paper::table5RemSavings, true},
          Cell{"compress", "comp_app", paper::table5CompressSavings,
               false}}) {
        if (cell.at_trace_point) {
            sim::Random rng(7);
            const auto rates =
                net::makeDcTrace(net::DcTraceParams{}, rng);
            double watts[2];
            for (auto p : {hw::Platform::HostCpu,
                           hw::Platform::SnicAccel}) {
                TestbedConfig cfg;
                cfg.workloadId = cell.id;
                cfg.platform = p;
                cfg.seed = 7;
                Testbed bed(cfg);
                const auto m =
                    bed.replaySchedule(rates, sim::msToTicks(2.0));
                watts[p == hw::Platform::HostCpu ? 0 : 1] =
                    m.energy.avgServerWatts;
            }
            printRow(measured,
                     computeRow(cell.label, watts[1], watts[0], 1.0,
                                1.0),
                     cell.paper);
            continue;
        }
        const auto row = compareOnPlatforms(cell.id, opts);
        const auto tco = computeRow(
            cell.label, row.snic.energy.avgServerWatts,
            row.host.energy.avgServerWatts, row.snic.maxGbps,
            row.host.maxGbps);
        printRow(measured, tco, cell.paper);
    }
    measured.print();

    std::printf(
        "The headline result holds in both passes: only functions "
        "where the SNIC matches or beats host throughput (fio, OvS, "
        "Compress) recoup the SNIC's higher purchase price; "
        "Compress's 3.5x throughput advantage shrinks the fleet and "
        "dominates everything else.\n");
    return 0;
}
