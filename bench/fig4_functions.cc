/**
 * @file
 * E1 — Fig. 4: maximum sustainable throughput and p99 latency of the
 * SNIC processor running every function, normalized to the host CPU.
 *
 * Prints one row per workload configuration with the measured
 * SNIC/host ratios and the paper's published band for each.
 */

#include <cstdio>

#include "core/report.hh"
#include "core/runner.hh"
#include "core/trace.hh"
#include "sim/logging.hh"

using namespace snic;
using namespace snic::core;

namespace {

/** Pipeline stage order (core/pipeline.cc builds it fixed). */
const char *const kStageNames[] = {"ingress", "stack", "app",
                                   "accelerator", "egress"};

/** Which stage holds a cell's slowest requests, and why: the
 *  residency of the dominant stage split into doorbell
 *  backpressure, batch-formation stall, worker queueing, and
 *  service — plus the engine's batching and descriptor-ring
 *  occupancy when the cell coalesces jobs. */
void
printForensics(const NormalizedRow &row)
{
    const TailAttribution a = attributeTail(row.snic.slowestTraces);
    if (a.stage < 0)
        return;
    const char *stage =
        static_cast<std::size_t>(a.stage) <
                sizeof kStageNames / sizeof kStageNames[0]
            ? kStageNames[a.stage]
            : "?";
    std::printf("  %-18s %-11s %4.0f%% of tail residency "
                "(backpressure %2.0f%% | stall %2.0f%% | "
                "queue %2.0f%% | service %2.0f%%)\n",
                row.workloadId.c_str(), stage, a.share * 100.0,
                a.backpressureShare * 100.0,
                a.batchStallShare * 100.0, a.queueShare * 100.0,
                a.serviceShare * 100.0);

    const hw::BatchingSnapshot &b = row.snic.accelBatching;
    const hw::RingSnapshot &r = row.snic.accelRing;
    if (b.batches > 0) {
        std::printf("  %-18s engine: %llu batches (mean %.1f, max %u "
                    "members), ring occupancy p50/p99 %llu/%llu\n",
                    "", static_cast<unsigned long long>(b.batches),
                    b.meanOccupancy(), b.maxOccupancy,
                    static_cast<unsigned long long>(r.occupancy.p50()),
                    static_cast<unsigned long long>(r.occupancy.p99()));
    }
    if (r.bounded()) {
        std::printf("  %-18s ring depth %u: %.1f%% of admissions "
                    "parked, mean stall %.1f us\n",
                    "", r.depth, r.parkedShare() * 100.0,
                    sim::ticksToUs(r.stall.mean()));
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const bool csv = stats::Table::wantCsv(argc, argv);
    sim::setLogLevel(sim::LogLevel::Quiet);
    ExperimentOptions opts;
    opts.targetSamples = 8000;
    opts.traceSlowest = 8;

    const auto lineup = workloads::fig4Lineup();

    // Every (function x platform) cell is independent: fan the whole
    // figure out across the machine in one sweep.
    ExperimentRunner runner;
    std::vector<std::string> ids = lineup.softwareOnly;
    ids.insert(ids.end(), lineup.hardwareAccelerated.begin(),
               lineup.hardwareAccelerated.end());
    const auto rows = compareOnPlatforms(ids, runner, opts);

    stats::Table sw("Fig. 4 — Software-Only Functions "
                    "(SNIC CPU / host CPU)");
    setFig4Header(sw);
    double tput_lo = 1e9, tput_hi = 0, p99_lo = 1e9, p99_hi = 0;
    auto track = [&](const NormalizedRow &row) {
        tput_lo = std::min(tput_lo, row.throughputRatio);
        tput_hi = std::max(tput_hi, row.throughputRatio);
        p99_lo = std::min(p99_lo, row.p99Ratio);
        p99_hi = std::max(p99_hi, row.p99Ratio);
    };
    const std::size_t n_sw = lineup.softwareOnly.size();
    for (std::size_t i = 0; i < n_sw; ++i) {
        addFig4Row(sw, rows[i]);
        track(rows[i]);
    }
    sw.print(csv);

    stats::Table hwt("Fig. 4 — Hardware-Accelerated Functions "
                     "(SNIC accel / host CPU)");
    setFig4Header(hwt);
    for (std::size_t i = n_sw; i < rows.size(); ++i) {
        addFig4Row(hwt, rows[i]);
        track(rows[i]);
    }
    hwt.print(csv);

    // Where the SNIC side's p99 comes from, per accelerated
    // function: the engines that coalesce jobs (REM) show a
    // batch-formation stall share the per-request engines cannot.
    std::printf("\nTail forensics — SNIC side at the load point "
                "(slowest 8 per cell):\n");
    for (std::size_t i = n_sw; i < rows.size(); ++i)
        printForensics(rows[i]);
    std::printf("\n");

    std::printf("Measured ranges: throughput %.2fx-%.2fx "
                "(paper %.1fx-%.1fx), p99 %.2fx-%.2fx "
                "(paper %.1fx-%.1fx)\n",
                tput_lo, tput_hi, paper::fig4ThroughputLo,
                paper::fig4ThroughputHi, p99_lo, p99_hi,
                paper::fig4P99Lo, paper::fig4P99Hi);
    return 0;
}
