/**
 * @file
 * E1 — Fig. 4: maximum sustainable throughput and p99 latency of the
 * SNIC processor running every function, normalized to the host CPU.
 *
 * Prints one row per workload configuration with the measured
 * SNIC/host ratios and the paper's published band for each.
 */

#include <cstdio>

#include "core/report.hh"
#include "sim/logging.hh"

using namespace snic;
using namespace snic::core;

int
main(int argc, char **argv)
{
    const bool csv = stats::Table::wantCsv(argc, argv);
    sim::setLogLevel(sim::LogLevel::Quiet);
    ExperimentOptions opts;
    opts.targetSamples = 8000;

    const auto lineup = workloads::fig4Lineup();

    stats::Table sw("Fig. 4 — Software-Only Functions "
                    "(SNIC CPU / host CPU)");
    setFig4Header(sw);
    double tput_lo = 1e9, tput_hi = 0, p99_lo = 1e9, p99_hi = 0;
    auto track = [&](const NormalizedRow &row) {
        tput_lo = std::min(tput_lo, row.throughputRatio);
        tput_hi = std::max(tput_hi, row.throughputRatio);
        p99_lo = std::min(p99_lo, row.p99Ratio);
        p99_hi = std::max(p99_hi, row.p99Ratio);
    };
    for (const auto &id : lineup.softwareOnly) {
        const auto row = compareOnPlatforms(id, opts);
        addFig4Row(sw, row);
        track(row);
    }
    sw.print(csv);

    stats::Table hwt("Fig. 4 — Hardware-Accelerated Functions "
                     "(SNIC accel / host CPU)");
    setFig4Header(hwt);
    for (const auto &id : lineup.hardwareAccelerated) {
        const auto row = compareOnPlatforms(id, opts);
        addFig4Row(hwt, row);
        track(row);
    }
    hwt.print(csv);

    std::printf("Measured ranges: throughput %.2fx-%.2fx "
                "(paper %.1fx-%.1fx), p99 %.2fx-%.2fx "
                "(paper %.1fx-%.1fx)\n",
                tput_lo, tput_hi, paper::fig4ThroughputLo,
                paper::fig4ThroughputHi, p99_lo, p99_hi,
                paper::fig4P99Lo, paper::fig4P99Hi);
    return 0;
}
