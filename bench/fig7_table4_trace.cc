/**
 * @file
 * E4 — Fig. 7 + Table 4: replay the (synthetic) hyperscaler network
 * trace through REM on the host CPU and the SNIC accelerator;
 * report average throughput, p99 latency, and average power.
 */

#include <cstdio>

#include "core/calibration.hh"
#include "core/testbed.hh"
#include "net/dc_trace.hh"
#include "sim/logging.hh"
#include "stats/summary.hh"

using namespace snic;
using namespace snic::core;

int
main()
{
    sim::setLogLevel(sim::LogLevel::Quiet);

    // Fig. 7: the trace itself.
    sim::Random rng(2023);
    net::DcTraceParams params;  // mean 0.76 Gbps, bursty
    const auto rates = net::makeDcTrace(params, rng);
    // Replay once on the host to obtain the *measured* rate series
    // alongside the offered one (the y-axis of Fig. 7).
    std::vector<double> measured_series;
    {
        TestbedConfig cfg;
        cfg.workloadId = "rem_exe_mtu";
        cfg.platform = hw::Platform::HostCpu;
        cfg.seed = 7;
        Testbed bed(cfg);
        measured_series =
            bed.replaySchedule(rates, sim::msToTicks(2.0))
                .servedGbpsSeries;
    }
    stats::Table fig7("Fig. 7 — Synthetic hyperscaler trace "
                      "(2 ms bins; Gbps, decimated)");
    fig7.setHeader({"bin", "offered Gbps", "served Gbps"});
    for (std::size_t i = 0; i < rates.size(); i += 15) {
        fig7.addRow({std::to_string(i),
                     stats::Table::num(rates[i], 2),
                     i < measured_series.size()
                         ? stats::Table::num(measured_series[i], 2)
                         : "-"});
    }
    fig7.print();
    std::printf("trace mean %.3f Gbps (paper %.2f), peak %.2f Gbps\n\n",
                net::traceMean(rates), paper::table4ThroughputGbps,
                net::tracePeak(rates));

    // Table 4: replay on both platforms.
    stats::Table t4("Table 4 — REM under the datacenter trace "
                    "(file_executable, MTU)");
    t4.setHeader({"metric", "host (paper)", "host (measured)",
                  "snic (paper)", "snic (measured)"});
    Measurement host_m, snic_m;
    for (auto p : {hw::Platform::HostCpu, hw::Platform::SnicAccel}) {
        TestbedConfig cfg;
        cfg.workloadId = "rem_exe_mtu";
        cfg.platform = p;
        cfg.seed = 7;
        Testbed bed(cfg);
        const auto m = bed.replaySchedule(rates, sim::msToTicks(2.0));
        (p == hw::Platform::HostCpu ? host_m : snic_m) = m;
    }
    t4.addRow({"throughput (Gb/s)",
               stats::Table::num(paper::table4ThroughputGbps, 2),
               stats::Table::num(host_m.achievedGbps, 2),
               stats::Table::num(paper::table4ThroughputGbps, 2),
               stats::Table::num(snic_m.achievedGbps, 2)});
    t4.addRow({"p99 latency (us)",
               stats::Table::num(paper::table4HostP99Us, 2),
               stats::Table::num(host_m.p99Us(), 2),
               stats::Table::num(paper::table4SnicP99Us, 2),
               stats::Table::num(snic_m.p99Us(), 2)});
    t4.addRow({"average power (W)",
               stats::Table::num(paper::table4HostPowerW, 1),
               stats::Table::num(host_m.energy.avgServerWatts, 1),
               stats::Table::num(paper::table4SnicPowerW, 1),
               stats::Table::num(snic_m.energy.avgServerWatts, 1)});
    t4.print();

    const double saving = (host_m.energy.avgServerWatts -
                           snic_m.energy.avgServerWatts) /
                          host_m.energy.avgServerWatts;
    std::printf("Offloading to the SNIC cuts power by %.1f%% (paper: "
                "~9%%) but raises p99 by %.1fx (paper: ~3x) — the "
                "Sec. 5.1 SLO-vs-power trade-off.\n",
                saving * 100.0, snic_m.p99Us() / host_m.p99Us());
    return 0;
}
