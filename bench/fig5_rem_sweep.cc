/**
 * @file
 * E2 — Fig. 5: REM throughput and p99 latency versus offered packet
 * rate at MTU packets, for the host CPU (file_image and
 * file_executable) and the SNIC accelerator.
 */

#include <cstdio>

#include "core/calibration.hh"
#include "core/experiment.hh"
#include "core/runner.hh"
#include "sim/logging.hh"
#include "stats/ascii_plot.hh"
#include "stats/summary.hh"

using namespace snic;
using namespace snic::core;

namespace {

bool csvOutput = false;

struct SweepSeries
{
    std::vector<double> rates;
    std::vector<double> achieved;
    std::vector<double> p99;
};

std::vector<double>
sweepRates()
{
    std::vector<double> rates;
    for (double rate = 10.0; rate <= 90.0 + 1e-9; rate += 10.0)
        rates.push_back(rate);
    return rates;
}

SweepSeries
tabulate(const char *label, const std::vector<double> &rates,
         const std::vector<Measurement> &points)
{
    SweepSeries out;
    stats::Table t(label);
    t.setHeader({"offered Gbps", "achieved Gbps", "p99 us"});
    for (std::size_t i = 0; i < rates.size(); ++i) {
        const auto &m = points[i];
        t.addRow({stats::Table::num(rates[i], 0),
                  stats::Table::num(m.achievedGbps, 1),
                  stats::Table::num(m.p99Us(), 1)});
        out.rates.push_back(rates[i]);
        out.achieved.push_back(m.achievedGbps);
        out.p99.push_back(m.p99Us());
    }
    t.print(csvOutput);
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    csvOutput = stats::Table::wantCsv(argc, argv);

    // Four series x nine load points, all independent: one batch.
    struct SeriesSpec
    {
        const char *label;
        const char *workloadId;
        hw::Platform platform;
    };
    const std::vector<SeriesSpec> series{
        {"Fig. 5 — host CPU, file_executable (8 cores, MTU)",
         "rem_exe_mtu", hw::Platform::HostCpu},
        {"Fig. 5 — host CPU, file_image (8 cores, MTU)",
         "rem_img_mtu", hw::Platform::HostCpu},
        {"Fig. 5 — SNIC accelerator, file_executable (MTU)",
         "rem_exe_mtu", hw::Platform::SnicAccel},
        {"Fig. 5 — SNIC accelerator, file_image (MTU)",
         "rem_img_mtu", hw::Platform::SnicAccel},
    };
    const auto rates = sweepRates();
    ExperimentOptions opts;
    opts.targetSamples = 6000;
    std::vector<RateCell> cells;
    for (const auto &s : series) {
        for (double rate : rates)
            cells.push_back({s.workloadId, s.platform, rate, opts});
    }
    ExperimentRunner runner;
    const auto points = runner.measureCells(cells);

    auto seriesPoints = [&](std::size_t s) {
        return std::vector<Measurement>(
            points.begin() + static_cast<std::ptrdiff_t>(s *
                                                         rates.size()),
            points.begin() + static_cast<std::ptrdiff_t>(
                                 (s + 1) * rates.size()));
    };
    const auto host_exe =
        tabulate(series[0].label, rates, seriesPoints(0));
    const auto host_img =
        tabulate(series[1].label, rates, seriesPoints(1));
    const auto accel_exe =
        tabulate(series[2].label, rates, seriesPoints(2));
    tabulate(series[3].label, rates, seriesPoints(3));

    if (!csvOutput) {
        stats::AsciiPlot tput("Fig. 5 (top) — achieved Gbps vs "
                              "offered Gbps");
        tput.addSeries('e', host_exe.rates, host_exe.achieved,
                       "host file_executable");
        tput.addSeries('i', host_img.rates, host_img.achieved,
                       "host file_image");
        tput.addSeries('a', accel_exe.rates, accel_exe.achieved,
                       "SNIC accelerator");
        tput.print();

        stats::AsciiPlot lat("Fig. 5 (bottom) — p99 us vs offered "
                             "Gbps (clamped at 100 us)");
        lat.setYLimit(100.0);
        lat.addSeries('e', host_exe.rates, host_exe.p99,
                      "host file_executable");
        lat.addSeries('i', host_img.rates, host_img.p99,
                      "host file_image");
        lat.addSeries('a', accel_exe.rates, accel_exe.p99,
                      "SNIC accelerator");
        lat.print();
    }

    std::printf(
        "Paper anchors: accel caps at ~%.0f Gbps with ~%.1f us p99; "
        "host file_executable reaches %.0f Gbps at ~%.1f us p99; "
        "host file_image hits its p99 knee far earlier (paper ~%.0f "
        "Gbps; this reproduction's knee sits lower, see "
        "EXPERIMENTS.md).\n",
        paper::remAccelCapGbps, paper::remAccelP99UsAtMax,
        paper::remHostExeGbps, paper::remHostP99UsAtMax,
        paper::remHostImgKneeGbps);
    return 0;
}
