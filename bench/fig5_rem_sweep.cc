/**
 * @file
 * E2 — Fig. 5: REM throughput and p99 latency versus offered packet
 * rate at MTU packets, for the host CPU (file_image and
 * file_executable) and the SNIC accelerator.
 *
 * `--batch` switches to the RXP batching sweep: job batch size x
 * offered load under a forced Coalescing discipline, exposing the
 * latency/throughput trade the engine's job descriptor size buys —
 * the low-load floor rises with every batch step while the ceiling
 * holds in the paper's ~50 Gbps band.
 *
 * `--ring-depth` sweeps the engine's descriptor-ring depth x offered
 * load with the workload's own coalescing: a finite ring turns on
 * doorbell backpressure (full ring parks submitters and charges the
 * stall to the serving cores), so the p99 knee shifts left as the
 * ring shrinks.
 *
 * All modes keep per-request stage traces of the slowest requests
 * and close with a tail-forensics section: which pipeline stage owns
 * the p99, split into doorbell backpressure vs batch-formation
 * stall vs worker queueing vs service, plus the ring-full
 * correlation when the ring is bounded.
 */

#include <cstdio>
#include <cstring>

#include "core/calibration.hh"
#include "core/experiment.hh"
#include "core/runner.hh"
#include "sim/logging.hh"
#include "stats/ascii_plot.hh"
#include "stats/summary.hh"

using namespace snic;
using namespace snic::core;

namespace {

bool csvOutput = false;

struct SweepSeries
{
    std::vector<double> rates;
    std::vector<double> achieved;
    std::vector<double> p99;
};

std::vector<double>
sweepRates()
{
    std::vector<double> rates;
    for (double rate = 10.0; rate <= 90.0 + 1e-9; rate += 10.0)
        rates.push_back(rate);
    return rates;
}

SweepSeries
tabulate(const char *label, const std::vector<double> &rates,
         const std::vector<Measurement> &points)
{
    SweepSeries out;
    stats::Table t(label);
    t.setHeader({"offered Gbps", "achieved Gbps", "p99 us"});
    for (std::size_t i = 0; i < rates.size(); ++i) {
        const auto &m = points[i];
        t.addRow({stats::Table::num(rates[i], 0),
                  stats::Table::num(m.achievedGbps, 1),
                  stats::Table::num(m.p99Us(), 1)});
        out.rates.push_back(rates[i]);
        out.achieved.push_back(m.achievedGbps);
        out.p99.push_back(m.p99Us());
    }
    t.print(csvOutput);
    return out;
}

/** Print where a measured cell's slowest requests spent their time:
 *  the dominant stage and its backpressure / batch-stall / queueing
 *  / service split, plus — when the engine ring is bounded — which
 *  upstream stage's residency coincided with the ring-full spans. */
void
printForensics(const char *label, const Measurement &m)
{
    const TailAttribution a = attributeTail(m.slowestTraces);
    if (a.stage < 0) {
        std::printf("  %-44s no traces kept\n", label);
        return;
    }
    auto stageName = [&](int s) {
        return static_cast<std::size_t>(s) < m.stageStats.size()
                   ? m.stageStats[static_cast<std::size_t>(s)]
                         .name.c_str()
                   : "?";
    };
    std::printf("  %-44s %-11s %4.0f%% of tail residency "
                "(backpressure %2.0f%% | stall %2.0f%% | "
                "queue %2.0f%% | service %2.0f%%)\n",
                label, stageName(a.stage), a.share * 100.0,
                a.backpressureShare * 100.0,
                a.batchStallShare * 100.0, a.queueShare * 100.0,
                a.serviceShare * 100.0);
    const BackpressureCorrelation &c = m.backpressure;
    if (c.stage >= 0) {
        std::printf("  %-44s ring full %.0f us; %.0f%% of %s "
                    "residency inside the full spans\n",
                    "", sim::ticksToUs(c.ringFullTicks),
                    c.share * 100.0, stageName(c.stage));
    }
}

/** Default mode: the paper's Fig. 5 sweep. */
int
runFigureSweep()
{
    // Four series x nine load points, all independent: one batch.
    struct SeriesSpec
    {
        const char *label;
        const char *workloadId;
        hw::Platform platform;
    };
    const std::vector<SeriesSpec> series{
        {"Fig. 5 — host CPU, file_executable (8 cores, MTU)",
         "rem_exe_mtu", hw::Platform::HostCpu},
        {"Fig. 5 — host CPU, file_image (8 cores, MTU)",
         "rem_img_mtu", hw::Platform::HostCpu},
        {"Fig. 5 — SNIC accelerator, file_executable (MTU)",
         "rem_exe_mtu", hw::Platform::SnicAccel},
        {"Fig. 5 — SNIC accelerator, file_image (MTU)",
         "rem_img_mtu", hw::Platform::SnicAccel},
    };
    const auto rates = sweepRates();
    ExperimentOptions opts;
    opts.targetSamples = 6000;
    opts.traceSlowest = 8;
    std::vector<RateCell> cells;
    for (const auto &s : series) {
        for (double rate : rates)
            cells.push_back({s.workloadId, s.platform, rate, opts});
    }
    ExperimentRunner runner;
    const auto points = runner.measureCells(cells);

    auto seriesPoints = [&](std::size_t s) {
        return std::vector<Measurement>(
            points.begin() + static_cast<std::ptrdiff_t>(s *
                                                         rates.size()),
            points.begin() + static_cast<std::ptrdiff_t>(
                                 (s + 1) * rates.size()));
    };
    const auto host_exe =
        tabulate(series[0].label, rates, seriesPoints(0));
    const auto host_img =
        tabulate(series[1].label, rates, seriesPoints(1));
    const auto accel_exe =
        tabulate(series[2].label, rates, seriesPoints(2));
    tabulate(series[3].label, rates, seriesPoints(3));

    if (!csvOutput) {
        stats::AsciiPlot tput("Fig. 5 (top) — achieved Gbps vs "
                              "offered Gbps");
        tput.addSeries('e', host_exe.rates, host_exe.achieved,
                       "host file_executable");
        tput.addSeries('i', host_img.rates, host_img.achieved,
                       "host file_image");
        tput.addSeries('a', accel_exe.rates, accel_exe.achieved,
                       "SNIC accelerator");
        tput.print();

        stats::AsciiPlot lat("Fig. 5 (bottom) — p99 us vs offered "
                             "Gbps (clamped at 100 us)");
        lat.setYLimit(100.0);
        lat.addSeries('e', host_exe.rates, host_exe.p99,
                      "host file_executable");
        lat.addSeries('i', host_img.rates, host_img.p99,
                      "host file_image");
        lat.addSeries('a', accel_exe.rates, accel_exe.p99,
                      "SNIC accelerator");
        lat.print();
    }

    // Tail forensics for the accelerator series at three operating
    // points: floor (first rate), knee, and saturation (last rate).
    // Below the knee the stall share dominates (requests wait out
    // batch formation); past it queueing takes over.
    std::printf("\nTail forensics — SNIC accelerator, "
                "file_executable (slowest 8 per cell):\n");
    const auto accel = seriesPoints(2);
    const std::size_t knee = rates.size() / 2;
    char label[64];
    std::snprintf(label, sizeof label, "floor (%.0f Gbps offered)",
                  rates.front());
    printForensics(label, accel.front());
    std::snprintf(label, sizeof label, "knee (%.0f Gbps offered)",
                  rates[knee]);
    printForensics(label, accel[knee]);
    std::snprintf(label, sizeof label,
                  "saturation (%.0f Gbps offered)", rates.back());
    printForensics(label, accel.back());

    std::printf(
        "\nPaper anchors: accel caps at ~%.0f Gbps with ~%.1f us p99; "
        "host file_executable reaches %.0f Gbps at ~%.1f us p99; "
        "host file_image hits its p99 knee far earlier (paper ~%.0f "
        "Gbps; this reproduction's knee sits lower, see "
        "EXPERIMENTS.md).\n",
        paper::remAccelCapGbps, paper::remAccelP99UsAtMax,
        paper::remHostExeGbps, paper::remHostP99UsAtMax,
        paper::remHostImgKneeGbps);
    return 0;
}

/** `--batch` mode: job batch size x offered load on the engine. */
int
runBatchSweep()
{
    const std::vector<unsigned> batches{1, 2, 4, 8, 16, 32};
    const std::vector<double> rates{5.0, 10.0, 20.0, 30.0, 40.0,
                                    50.0, 60.0};

    // One cell per (batch, rate): force the Coalescing discipline
    // with a long 50 us window so batch-fill time — not the window —
    // sets the low-load floor, per-job setup proportional to the
    // descriptor size, and the RXP's batched DMA pipeline.
    std::vector<RateCell> cells;
    for (unsigned batch : batches) {
        ExperimentOptions opts;
        opts.targetSamples = 6000;
        opts.traceSlowest = 8;
        opts.accelQueueing = AccelQueueing::ForceCoalescing;
        opts.accelBatchOverride.maxBatch = batch;
        opts.accelBatchOverride.coalesceWindowNs = 50000.0;
        opts.accelBatchOverride.batchSetupNs = 90.0 * batch;
        opts.accelBatchOverride.batchedPipelineNs = 10000.0;
        for (double rate : rates) {
            cells.push_back({"rem_exe_mtu", hw::Platform::SnicAccel,
                             rate, opts});
        }
    }
    ExperimentRunner runner;
    const auto points = runner.measureCells(cells);

    std::vector<double> batch_x, floor_p50, ceiling;
    for (std::size_t b = 0; b < batches.size(); ++b) {
        char title[80];
        std::snprintf(title, sizeof title,
                      "Fig. 5 (batch sweep) — SNIC accelerator, "
                      "job batch %u",
                      batches[b]);
        stats::Table t(title);
        t.setHeader({"offered Gbps", "achieved Gbps", "p50 us",
                     "p99 us"});
        for (std::size_t r = 0; r < rates.size(); ++r) {
            const auto &m = points[b * rates.size() + r];
            t.addRow({stats::Table::num(rates[r], 0),
                      stats::Table::num(m.achievedGbps, 1),
                      stats::Table::num(m.p50Us(), 1),
                      stats::Table::num(m.p99Us(), 1)});
        }
        t.print(csvOutput);

        batch_x.push_back(static_cast<double>(batches[b]));
        // Floor: p50 at the lightest load. Ceiling: achieved at the
        // heaviest offer.
        floor_p50.push_back(points[b * rates.size()].p50Us());
        ceiling.push_back(
            points[b * rates.size() + rates.size() - 1].achievedGbps);
    }

    if (!csvOutput) {
        stats::AsciiPlot floor("Batch sweep — low-load p50 us vs "
                               "job batch size (the latency cost of "
                               "batching)");
        floor.addSeries('f', batch_x, floor_p50, "p50 at 5 Gbps");
        floor.print();

        stats::AsciiPlot cap("Batch sweep — achieved Gbps at 60 "
                             "offered vs job batch size");
        cap.addSeries('c', batch_x, ceiling, "ceiling");
        cap.print();
    }

    std::printf("\nTail forensics — slowest 8 at the low-load floor "
                "(stall = batch-formation wait):\n");
    for (std::size_t b = 0; b < batches.size(); ++b) {
        char label[48];
        std::snprintf(label, sizeof label, "batch %2u, %.0f Gbps",
                      batches[b], rates.front());
        printForensics(label, points[b * rates.size()]);
    }

    std::printf(
        "\nThe floor rises monotonically with the job batch (%.1f -> "
        "%.1f us p50 at %.0f Gbps) while the ceiling stays in the "
        "paper's ~%.0f Gbps band (%.1f Gbps at batch %u): batching "
        "buys the engine's throughput with low-load latency.\n",
        floor_p50.front(), floor_p50.back(), rates.front(),
        paper::remAccelCapGbps, ceiling.back(), batches.back());
    return 0;
}

/** `--ring-depth` mode: descriptor-ring depth x offered load. */
int
runRingDepthSweep()
{
    // Depth 0 = the unbounded default (no doorbell model); finite
    // depths bound pending + in-service occupancy on the engine.
    const std::vector<unsigned> depths{0, 256, 96, 48};
    const std::vector<double> rates{10.0, 20.0, 30.0, 40.0, 45.0,
                                    50.0, 60.0};

    std::vector<RateCell> cells;
    for (unsigned depth : depths) {
        ExperimentOptions opts;
        opts.targetSamples = 6000;
        opts.traceSlowest = 8;
        opts.accelRingDepth = depth;
        for (double rate : rates) {
            cells.push_back({"rem_exe_mtu", hw::Platform::SnicAccel,
                             rate, opts});
        }
    }
    ExperimentRunner runner;
    const auto points = runner.measureCells(cells);

    std::vector<std::vector<double>> p99_series(depths.size());
    for (std::size_t d = 0; d < depths.size(); ++d) {
        char title[96];
        if (depths[d] == 0) {
            std::snprintf(title, sizeof title,
                          "Fig. 5 (ring sweep) — SNIC accelerator, "
                          "unbounded ring");
        } else {
            std::snprintf(title, sizeof title,
                          "Fig. 5 (ring sweep) — SNIC accelerator, "
                          "ring depth %u",
                          depths[d]);
        }
        stats::Table t(title);
        t.setHeader({"offered Gbps", "achieved Gbps", "p99 us",
                     "parked %", "mean stall us", "ring occ p99"});
        for (std::size_t r = 0; r < rates.size(); ++r) {
            const auto &m = points[d * rates.size() + r];
            t.addRow({stats::Table::num(rates[r], 0),
                      stats::Table::num(m.achievedGbps, 1),
                      stats::Table::num(m.p99Us(), 1),
                      stats::Table::num(
                          m.accelRing.parkedShare() * 100.0, 1),
                      stats::Table::num(
                          sim::ticksToUs(m.accelRing.stall.mean()),
                          1),
                      stats::Table::num(static_cast<double>(
                                            m.accelRing.occupancy
                                                .p99()),
                                        0)});
            p99_series[d].push_back(m.p99Us());
        }
        t.print(csvOutput);
    }

    if (!csvOutput) {
        stats::AsciiPlot lat("Ring sweep — p99 us vs offered Gbps "
                             "(clamped at 150 us): the knee shifts "
                             "left as the ring shrinks");
        lat.setYLimit(150.0);
        const char marks[] = {'u', 'd', 'm', 's'};
        const char *labels[] = {"unbounded", "depth 256", "depth 96",
                                "depth 48"};
        for (std::size_t d = 0; d < depths.size(); ++d)
            lat.addSeries(marks[d], rates, p99_series[d], labels[d]);
        lat.print();
    }

    // Knee estimate per depth: the lowest offered rate whose p99
    // crosses 100 us. A shallower ring crosses earlier.
    std::printf("\np99 > 100 us knee per ring depth:\n");
    for (std::size_t d = 0; d < depths.size(); ++d) {
        double knee = 0.0;
        for (std::size_t r = 0; r < rates.size(); ++r) {
            if (p99_series[d][r] > 100.0) {
                knee = rates[r];
                break;
            }
        }
        if (depths[d] == 0)
            std::printf("  unbounded ring: ");
        else
            std::printf("  depth %9u: ", depths[d]);
        if (knee > 0.0)
            std::printf("%.0f Gbps\n", knee);
        else
            std::printf("beyond %.0f Gbps\n", rates.back());
    }

    // Tail forensics at the heaviest offer: with a finite ring the
    // backpressure share appears and the correlation names the
    // upstream stage that absorbed the doorbell stalls.
    std::printf("\nTail forensics — slowest 8 at %.0f Gbps "
                "offered:\n",
                rates.back());
    for (std::size_t d = 0; d < depths.size(); ++d) {
        char label[48];
        if (depths[d] == 0)
            std::snprintf(label, sizeof label, "unbounded ring");
        else
            std::snprintf(label, sizeof label, "ring depth %u",
                          depths[d]);
        printForensics(label,
                       points[d * rates.size() + rates.size() - 1]);
    }

    std::printf(
        "\nA full descriptor ring parks the submitting core like a "
        "blocked DOCA job post: the stall is charged upstream, so "
        "shrinking the ring moves the same saturation p99 to lower "
        "offered loads instead of growing an unbounded engine "
        "queue.\n");
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    csvOutput = stats::Table::wantCsv(argc, argv);
    bool batchMode = false;
    bool ringMode = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--batch") == 0)
            batchMode = true;
        if (std::strcmp(argv[i], "--ring-depth") == 0)
            ringMode = true;
    }
    if (ringMode)
        return runRingDepthSweep();
    return batchMode ? runBatchSweep() : runFigureSweep();
}
