/**
 * @file
 * Sec. 2.2 side path: "the host CPU can also access the REM and
 * compression accelerators through the PCIe interconnect ... without
 * involving the BlueField-2 CPU."
 *
 * The paper describes this path but evaluates only SNIC-CPU staging.
 * This bench models all three ways of driving the REM engine:
 *   (1) host software (Hyperscan),
 *   (2) SNIC-CPU staging -> engine (the paper's SA column),
 *   (3) host staging -> PCIe -> engine (the Sec. 2.2 alternative),
 * and shows why (3) is unattractive: it spends host cycles *and*
 * PCIe round trips to reach an engine that is still capped below
 * line rate.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "hw/accelerator.hh"
#include "hw/pcie.hh"
#include "hw/specs.hh"
#include "sim/logging.hh"
#include "stats/histogram.hh"
#include "stats/summary.hh"
#include "workloads/registry.hh"

using namespace snic;
using namespace snic::core;

namespace {

/** Host-staged engine access: host CPU stages, PCIe carries, the
 *  engine scans. Returns (gbps, p99_us) at the given offered rate. */
std::pair<double, double>
hostStagedRem(double offered_gbps, sim::Tick window)
{
    sim::Simulation s(13);
    auto host = hw::makeHostCpu(s, 8);
    auto engine = hw::makeAccelerator(s, hw::AccelKind::Rem);
    hw::PcieLink pcie(s, "pcie", hw::specs::pcieGBps,
                      hw::specs::pcieLatencyNs);

    auto w = workloads::makeWorkload("rem_exe_mtu");
    sim::Random setup_rng(13);
    w->setup(setup_rng);

    stats::Histogram latency;
    std::uint64_t completed = 0;
    double bytes = 0.0;

    const double pkts_per_sec =
        offered_gbps * 1e9 / 8.0 / net::mtuBytes;
    const sim::Tick gap = static_cast<sim::Tick>(1e12 / pkts_per_sec);
    const sim::Tick end = window;
    for (sim::Tick t = 0; t < end; t += gap) {
        s.at(t, [&, t] {
            // Host staging: same descriptor work the SNIC cores do,
            // priced on host silicon.
            alg::WorkCounters staging;
            staging.branchyOps = 50;
            staging.arithOps = 24;
            host->submit(staging, t, [&, t] {
                // DMA the payload to the engine and back.
                const sim::Tick dma =
                    pcie.transferDelay(net::mtuBytes) +
                    pcie.transferDelay(64);
                s.after(dma, [&, t] {
                    alg::WorkCounters job;
                    job.streamBytes = net::mtuBytes;
                    job.messages = 1;
                    engine->submit(job, t, [&, t] {
                        latency.record(s.now() - t);
                        ++completed;
                        bytes += net::mtuBytes;
                    });
                });
            });
        });
    }
    s.runUntil(end + sim::msToTicks(1.0));
    const double secs = sim::ticksToSec(end);
    return {bytes * 8.0 / secs / 1e9, sim::ticksToUs(latency.p99())};
}

} // anonymous namespace

int
main()
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    ExperimentOptions opts;
    opts.targetSamples = 6000;

    stats::Table t("Sec. 2.2 — three ways to run REM "
                   "(file_executable, MTU, 40 Gbps offered)");
    t.setHeader({"path", "achieved Gbps", "p99 us",
                 "host cores busy"});

    const double rate = 40.0;
    const auto host_sw =
        measureAtRate("rem_exe_mtu", hw::Platform::HostCpu, rate,
                      opts);
    t.addRow({"host software (Hyperscan)",
              stats::Table::num(host_sw.achievedGbps, 1),
              stats::Table::num(host_sw.p99Us(), 1), "8 (scan)"});

    const auto snic_staged =
        measureAtRate("rem_exe_mtu", hw::Platform::SnicAccel, rate,
                      opts);
    t.addRow({"SNIC-CPU staged engine",
              stats::Table::num(snic_staged.achievedGbps, 1),
              stats::Table::num(snic_staged.p99Us(), 1), "0"});

    const auto [hs_gbps, hs_p99] =
        hostStagedRem(rate, sim::msToTicks(10.0));
    t.addRow({"host-staged engine (PCIe)",
              stats::Table::num(hs_gbps, 1),
              stats::Table::num(hs_p99, 1), "~1 (staging)"});
    t.print();

    std::printf(
        "Host staging reaches the same engine ceiling while spending "
        "host cycles and two PCIe crossings per packet — it only "
        "makes sense when the SNIC CPU is busy with something else, "
        "which is why the paper's SA configurations stage from the "
        "SNIC CPU.\n");
    return 0;
}
