/**
 * @file
 * xdp_acl — the XDP early-drop (ACL/DDoS) scenario.
 *
 * Legitimate 1 KB echo traffic (xdp_echo_1024) shares the wire with a
 * hostile 64 B flood offered at 2x the legitimate request rate. An
 * XDP filter drops a fraction f of the hostile packets *before* the
 * kernel crossing; the remainder leak through and burn full kernel
 * UDP cost on the host. Sweeping f shows the tier's value: at f=0 the
 * flood's kernel work overloads the host and the legitimate p99
 * collapses; as f rises the host sheds the flood at the price of only
 * the NIC-side program cost per packet, and the legitimate tail
 * recovers.
 *
 * Hostility is tagged by size class — hostile packets (and their
 * echoes) are 64 B, legitimate ones 1 KB — which is what the goodput
 * filter keys on at both egress and down-link delivery.
 *
 * Modes:
 *   xdp_acl           f in {0, .25, .5, .75, .9, 1}, 10 ms windows
 *   xdp_acl --smoke   f in {0, .5, 1}, 3 ms windows (CI)
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "core/testbed.hh"
#include "net/traffic_gen.hh"
#include "sim/logging.hh"

using namespace snic;
using namespace snic::core;

namespace {

/** Legitimate load as a fraction of the host's standalone capacity:
 *  low enough that a fully-filtered run has tail headroom, high
 *  enough that the unfiltered 2x flood (~3 streams of kernel work)
 *  pushes the host past saturation. */
constexpr double kLegitLoad = 0.4;

struct Cell
{
    double filter = 0.0;
    double goodputGbps = 0.0;
    double legitP99Us = 0.0;
    std::uint64_t legitCompleted = 0;
    std::uint64_t floodCompleted = 0;
    std::uint64_t earlyDropped = 0;
};

Cell
runCell(double filter, sim::Tick warmup, sim::Tick window)
{
    TestbedConfig tc;
    tc.workloadId = "xdp_echo_1024";
    tc.seed = 21;
    // The filter's coin is its own stream — the simulation's RNG
    // draws stay untouched by the verdict decision.
    auto rng = std::make_shared<sim::Random>(tc.seed + 424242);
    tc.xdpVerdict = [rng, filter](const net::Packet &pkt) {
        XdpOutcome out;
        if (pkt.sizeBytes < net::kbPacketBytes && rng->chance(filter))
            out.verdict = XdpVerdict::Drop;
        return out;
    };
    tc.goodFilter = [](const net::Packet &pkt) {
        return pkt.sizeBytes >= net::kbPacketBytes;
    };

    Testbed bed(tc);
    const double cap_rps = bed.estimateCapacityRps();
    const double legit_rps = kLegitLoad * cap_rps;
    const double legit_gbps = legit_rps * 1024.0 * 8.0 / 1e9;
    // Hostile flood: 2x the legitimate *request rate*, 64 B frames.
    const double flood_gbps = 2.0 * legit_rps * 64.0 * 8.0 / 1e9;

    net::TrafficGen flood(bed.sim(), "flood", bed.upLink(),
                          net::SizeDist::fixed(64), net::Proto::Udp);
    flood.startAtRate(flood_gbps,
                      bed.sim().now() + warmup + window);
    const Measurement m = bed.measure(legit_gbps, warmup, window);
    flood.stop();

    Cell c;
    c.filter = filter;
    c.goodputGbps = m.goodputGbps;
    c.legitP99Us = m.p99Us();
    c.legitCompleted = m.completed;
    c.floodCompleted = m.floodCompleted;
    for (const StageSnapshot &s : m.stageStats)
        if (s.name == "stack")
            c.earlyDropped = s.dropped;
    return c;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);

    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else {
            std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
            return 2;
        }
    }

    const sim::Tick warmup = sim::msToTicks(1.0);
    const sim::Tick window =
        smoke ? sim::msToTicks(3.0) : sim::msToTicks(10.0);
    const std::vector<double> filters =
        smoke ? std::vector<double>{0.0, 0.5, 1.0}
              : std::vector<double>{0.0, 0.25, 0.5, 0.75, 0.9, 1.0};

    std::printf("xdp_acl — XDP early drop under a 2x hostile 64 B "
                "flood (legit load %.0f%% of capacity)\n",
                kLegitLoad * 100.0);
    std::printf("%8s %12s %12s %12s %12s %12s\n", "filter",
                "goodput Gbps", "legit p99 us", "legit done",
                "flood done", "early drops");

    std::vector<Cell> cells;
    for (const double f : filters)
        cells.push_back(runCell(f, warmup, window));
    for (const Cell &c : cells) {
        std::printf("%8.2f %12.3f %12.1f %12llu %12llu %12llu\n",
                    c.filter, c.goodputGbps, c.legitP99Us,
                    static_cast<unsigned long long>(c.legitCompleted),
                    static_cast<unsigned long long>(c.floodCompleted),
                    static_cast<unsigned long long>(c.earlyDropped));
    }

    // The acceptance shape: the legitimate tail recovers as the
    // filter bites (a hostile packet killed before the kernel costs
    // only the NIC-side program, not a host kernel crossing).
    const Cell &worst = cells.front();
    const Cell &best = cells.back();
    const bool recovers = best.legitP99Us < worst.legitP99Us &&
                          best.goodputGbps >= worst.goodputGbps &&
                          best.floodCompleted == 0 &&
                          best.earlyDropped > 0;
    std::printf("anchor: legit p99 %.1f us unfiltered -> %.1f us at "
                "full filtering; recovery: %s\n",
                worst.legitP99Us, best.legitP99Us,
                recovers ? "yes" : "NO");
    return recovers ? 0 : 1;
}
