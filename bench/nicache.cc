/**
 * @file
 * nicache — the XDP in-NIC KVS front cache scenario.
 *
 * A GET service (nicache_get) runs over the XDP stack tier with an
 * in-NIC front cache sized at 10 % of the keyspace. The cache's hit
 * ratio is never configured: the verdict hook demand-fills on misses,
 * so it *emerges* from key popularity — the same hot-key-collapse
 * machinery the ToR's FlowHash dispatch uses, here driving which keys
 * are hot. The host is offered 1.2x its standalone capacity, so every
 * point of hit ratio the cache earns converts directly into host-path
 * relief: goodput and p99 improve monotonically with the skew knob
 * even though no knob sets the hit ratio itself.
 *
 * Modes:
 *   nicache           full skew sweep, 10 ms windows
 *   nicache --smoke   3 skews, 3 ms windows (CI)
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "alg/kv/front_cache.hh"
#include "core/testbed.hh"
#include "net/tor_switch.hh"
#include "sim/logging.hh"
#include "workloads/nicache.hh"

using namespace snic;
using namespace snic::core;

namespace {

constexpr std::uint64_t kKeys = workloads::NicacheGet::records;
constexpr std::size_t kCacheEntries = kKeys / 10;
constexpr double kOverload = 1.2;

struct Cell
{
    double skew = 0.0;
    double hitRatio = 0.0;
    double goodputGbps = 0.0;
    double p99Us = 0.0;
    std::uint64_t completed = 0;
};

Cell
runCell(double skew, sim::Tick warmup, sim::Tick window)
{
    TestbedConfig tc;
    tc.workloadId = "nicache_get";
    tc.seed = 31;

    auto cache = std::make_shared<alg::kv::FrontCache>(kCacheEntries);
    auto rng = std::make_shared<sim::Random>(tc.seed + 1234567);
    tc.xdpVerdict = [cache, rng, skew](const net::Packet &pkt) {
        const std::uint64_t key =
            net::hotKeyCollapse(pkt.flowHash, kKeys, skew, *rng);
        XdpOutcome out;
        if (const auto hit = cache->lookup(key)) {
            out.verdict = XdpVerdict::NicServe;
            out.responseBytes = 8 + *hit;
        } else {
            // XDP_PASS into the host KVS; the NIC map demand-fills
            // with the value the host will serve.
            cache->insert(key,
                          static_cast<std::uint32_t>(
                              workloads::NicacheGet::valueBytes));
        }
        return out;
    };

    Testbed bed(tc);
    const double cap_rps = bed.estimateCapacityRps();
    const double offered_gbps = kOverload * cap_rps * 64.0 * 8.0 / 1e9;

    // First window warms the cache to its steady-state working set;
    // the second is the measurement.
    bed.measure(offered_gbps, warmup, window);
    cache->resetStats();
    const Measurement m = bed.measure(offered_gbps, warmup, window);

    Cell c;
    c.skew = skew;
    c.hitRatio = cache->hitRatio();
    c.goodputGbps = m.goodputGbps;
    c.p99Us = m.p99Us();
    c.completed = m.completed;
    return c;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);

    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else {
            std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
            return 2;
        }
    }

    const sim::Tick warmup = sim::msToTicks(1.0);
    const sim::Tick window =
        smoke ? sim::msToTicks(3.0) : sim::msToTicks(10.0);
    const std::vector<double> skews =
        smoke ? std::vector<double>{0.0, 0.4, 0.8}
              : std::vector<double>{0.0, 0.2, 0.4, 0.6, 0.8};

    std::printf("nicache — in-NIC KVS front cache over the XDP tier "
                "(%zu of %llu keys cached, host offered %.1fx "
                "capacity)\n",
                kCacheEntries,
                static_cast<unsigned long long>(kKeys), kOverload);
    std::printf("%6s %10s %12s %12s %10s\n", "skew", "hit ratio",
                "completed", "goodput Gbps", "p99 us");

    std::vector<Cell> cells;
    for (const double skew : skews)
        cells.push_back(runCell(skew, warmup, window));
    for (const Cell &c : cells) {
        std::printf("%6.2f %10.3f %12llu %12.3f %10.1f\n", c.skew,
                    c.hitRatio,
                    static_cast<unsigned long long>(c.completed),
                    c.goodputGbps, c.p99Us);
    }

    // The acceptance shape: hit ratio tracks the popularity skew
    // (uniform converges to the capacity fraction), and every earned
    // hit relieves the overloaded host path.
    // Strict on the emergent hit ratio; 2 % slack on goodput/p99,
    // which plateau (with sub-µs jitter) once the earned hits have
    // pulled the host path out of overload.
    bool monotone = true;
    for (std::size_t i = 1; i < cells.size(); ++i) {
        if (cells[i].hitRatio <= cells[i - 1].hitRatio ||
            cells[i].goodputGbps < 0.98 * cells[i - 1].goodputGbps ||
            cells[i].p99Us > 1.02 * cells[i - 1].p99Us)
            monotone = false;
    }
    std::printf("anchor: uniform hit ratio %.3f vs capacity fraction "
                "%.3f; monotone improvement with skew: %s\n",
                cells.front().hitRatio,
                static_cast<double>(kCacheEntries) / kKeys,
                monotone ? "yes" : "NO");
    return monotone ? 0 : 1;
}
