/**
 * @file
 * E9 — KO3 ablation: host core-count scaling for software REM. The
 * paper notes 8 host cores reach 78 Gbps on file_executable and 10
 * cores reach the 100 Gbps line rate, while the accelerator is stuck
 * at ~50 Gbps regardless.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/throughput_search.hh"
#include "sim/logging.hh"
#include "stats/summary.hh"

using namespace snic;
using namespace snic::core;

int
main()
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    ExperimentOptions opts;
    opts.targetSamples = 6000;

    stats::Table t("KO3 — host core scaling, REM file_executable "
                   "(MTU) vs the fixed accelerator");
    t.setHeader({"cores", "host Gbps", "host p99 us"});
    for (unsigned cores : {2u, 4u, 6u, 8u, 10u, 12u}) {
        ExperimentOptions o = opts;
        o.hostCoresOverride = cores;
        const auto r =
            runExperiment("rem_exe_mtu", hw::Platform::HostCpu, o);
        t.addRow({std::to_string(cores),
                  stats::Table::num(r.maxGbps, 1),
                  stats::Table::num(r.p99Us, 1)});
    }
    t.print();

    const auto accel =
        runExperiment("rem_exe_mtu", hw::Platform::SnicAccel, opts);
    std::printf("SNIC accelerator (fixed hardware): %.1f Gbps at "
                "p99 %.1f us — no way to scale it to line rate, so "
                "host cores must stay reserved for overflow (KO3).\n",
                accel.maxGbps, accel.p99Us);
    return 0;
}
