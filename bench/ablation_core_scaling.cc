/**
 * @file
 * E9 — KO3 ablation: host core-count scaling for software REM. The
 * paper notes 8 host cores reach 78 Gbps on file_executable and 10
 * cores reach the 100 Gbps line rate, while the accelerator is stuck
 * at ~50 Gbps regardless.
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/runner.hh"
#include "core/throughput_search.hh"
#include "sim/logging.hh"
#include "stats/summary.hh"

using namespace snic;
using namespace snic::core;

int
main()
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    ExperimentOptions opts;
    opts.targetSamples = 6000;

    // Six host core counts plus the fixed accelerator, batched into
    // one parallel sweep.
    const std::vector<unsigned> core_counts{2, 4, 6, 8, 10, 12};
    std::vector<ExperimentCell> cells;
    for (unsigned cores : core_counts) {
        ExperimentOptions o = opts;
        o.hostCoresOverride = cores;
        cells.push_back({"rem_exe_mtu", hw::Platform::HostCpu, o});
    }
    cells.push_back({"rem_exe_mtu", hw::Platform::SnicAccel, opts});
    ExperimentRunner runner;
    const auto runs = runner.runCells(cells);

    stats::Table t("KO3 — host core scaling, REM file_executable "
                   "(MTU) vs the fixed accelerator");
    t.setHeader({"cores", "host Gbps", "host p99 us"});
    for (std::size_t i = 0; i < core_counts.size(); ++i) {
        const auto &r = runs[i];
        t.addRow({std::to_string(core_counts[i]),
                  stats::Table::num(r.maxGbps, 1),
                  stats::Table::num(r.p99Us, 1)});
    }
    t.print();

    const auto &accel = runs.back();
    std::printf("SNIC accelerator (fixed hardware): %.1f Gbps at "
                "p99 %.1f us — no way to scale it to line rate, so "
                "host cores must stay reserved for overflow (KO3).\n",
                accel.maxGbps, accel.p99Us);
    return 0;
}
