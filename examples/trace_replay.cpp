/**
 * @file
 * Trace replay: drive a function with the synthetic hyperscaler
 * trace (or a flat rate) and watch throughput and power over time —
 * the Sec. 5.1 experiment as an interactive tool.
 *
 *   ./trace_replay [workload_id] [host|snic_cpu|snic_accel] [--trace[=N]]
 *
 * --trace[=N] additionally records per-request stage timelines and
 * prints the N (default 5) slowest requests' stage breakdowns plus a
 * dominant-stage p99 attribution line. Tracing is opt-in and does
 * not perturb any measured number.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/testbed.hh"
#include "net/dc_trace.hh"
#include "sim/logging.hh"

using namespace snic;
using namespace snic::core;

namespace {

/** Print one traced request's stage-by-stage timeline. */
void
printTimeline(const RequestTrace &t, std::size_t rank,
              const std::vector<StageSnapshot> &stages)
{
    const sim::Tick t0 = t.enteredPipeline();
    std::printf("#%zu: request %llu, %llu B — latency %.2f us "
                "(pipeline %.2f us, entered t=%.3f ms)\n",
                rank, static_cast<unsigned long long>(t.requestId),
                static_cast<unsigned long long>(t.sizeBytes),
                sim::ticksToUs(t.latency()),
                sim::ticksToUs(t.totalResidency()),
                sim::ticksToSec(t0) * 1e3);
    std::printf("    %-12s %10s %10s %10s %8s\n", "stage",
                "enter us", "exit us", "resid us", "q@entry");
    for (std::uint8_t i = 0; i < t.hopCount; ++i) {
        const TraceHop &hop = t.hops[i];
        const char *name = hop.stage < stages.size()
                               ? stages[hop.stage].name.c_str()
                               : "?";
        std::printf("    %-12s %10.3f %10.3f %10.3f %8llu\n", name,
                    sim::ticksToUs(hop.entered - t0),
                    sim::ticksToUs(hop.exited - t0),
                    sim::ticksToUs(hop.residency()),
                    static_cast<unsigned long long>(
                        hop.queueDepthAtEntry));
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    std::string id = "rem_exe_mtu";
    hw::Platform platform = hw::Platform::HostCpu;
    std::size_t trace_slowest = 0;
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strncmp(argv[i], "--trace", 7)) {
            trace_slowest = 5;
            if (argv[i][7] == '=')
                trace_slowest = std::strtoul(argv[i] + 8, nullptr, 10);
            continue;
        }
        if (++positional == 1) {
            id = argv[i];
        } else if (!std::strcmp(argv[i], "snic_cpu")) {
            platform = hw::Platform::SnicCpu;
        } else if (!std::strcmp(argv[i], "snic_accel")) {
            platform = hw::Platform::SnicAccel;
        }
    }

    sim::Random rng(42);
    net::DcTraceParams params;
    const auto rates = net::makeDcTrace(params, rng);
    std::printf("Replaying a %zu-bin trace (mean %.2f Gbps, peak "
                "%.2f Gbps) of '%s' on %s\n\n",
                rates.size(), net::traceMean(rates),
                net::tracePeak(rates), id.c_str(),
                hw::platformName(platform));

    // Sparkline of the trace.
    static const char *glyphs[] = {" ", ".", ":", "-", "=", "+",
                                   "*", "#", "%", "@"};
    std::printf("trace: ");
    for (std::size_t i = 0; i < rates.size(); i += 4) {
        // Square-root scale: the trace is mostly far below its peak.
        int level = static_cast<int>(
            9.0 * std::sqrt(rates[i] / net::tracePeak(rates)));
        if (rates[i] > 0.0 && level == 0)
            level = 1;
        std::printf("%s", glyphs[level]);
    }
    std::printf("\n\n");

    TestbedConfig cfg;
    cfg.workloadId = id;
    cfg.platform = platform;
    cfg.seed = 42;
    Testbed bed(cfg);
    if (trace_slowest > 0)
        bed.enableTracing(trace_slowest);
    const auto m = bed.replaySchedule(rates, sim::msToTicks(2.0));

    std::printf("served %llu requests; avg throughput %.2f Gbps\n",
                static_cast<unsigned long long>(m.completed),
                m.achievedGbps);
    std::printf("latency: p50 %.1f us, p99 %.1f us, mean %.1f us\n",
                m.p50Us(), m.p99Us(), m.meanUs());
    std::printf("power: server %.1f W (SNIC %.2f W), %.1f W above "
                "idle\n",
                m.energy.avgServerWatts, m.energy.avgSnicWatts,
                m.energy.avgServerWatts - 252.0);

    // Where did the time go? Per-stage residency from the pipeline.
    std::printf("\n%-12s %10s %10s %8s %10s %10s\n", "stage",
                "accepted", "dropped", "inflight", "mean us",
                "p99 us");
    for (const auto &s : m.stageStats) {
        std::printf("%-12s %10llu %10llu %8llu %10.2f %10.2f\n",
                    s.name.c_str(),
                    static_cast<unsigned long long>(s.accepted),
                    static_cast<unsigned long long>(s.dropped),
                    static_cast<unsigned long long>(s.inFlight),
                    s.meanResidencyUs, s.p99ResidencyUs);
    }

    if (trace_slowest > 0) {
        std::printf("\nslowest %zu of %llu traced requests:\n\n",
                    m.slowestTraces.size(),
                    static_cast<unsigned long long>(
                        bed.tracer()->completed()));
        for (std::size_t i = 0; i < m.slowestTraces.size(); ++i)
            printTimeline(m.slowestTraces[i], i + 1, m.stageStats);

        const TailAttribution tail = attributeTail(m.slowestTraces);
        if (tail.stage >= 0) {
            const char *name =
                static_cast<std::size_t>(tail.stage) <
                        m.stageStats.size()
                    ? m.stageStats[tail.stage].name.c_str()
                    : "?";
            std::printf("\np99 attribution: stage '%s' dominates the "
                        "tail — %.1f%% of slowest-request residency, "
                        "largest hop in %zu/%zu timelines\n",
                        name, tail.share * 100.0, tail.dominated,
                        tail.traces);
        }
    }
    return 0;
}
