/**
 * @file
 * Trace replay: drive a function with the synthetic hyperscaler
 * trace (or a flat rate) and watch throughput and power over time —
 * the Sec. 5.1 experiment as an interactive tool.
 *
 *   ./trace_replay [workload_id] [host|snic_cpu|snic_accel]
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/testbed.hh"
#include "net/dc_trace.hh"
#include "sim/logging.hh"

using namespace snic;
using namespace snic::core;

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    const std::string id = argc > 1 ? argv[1] : "rem_exe_mtu";
    hw::Platform platform = hw::Platform::HostCpu;
    if (argc > 2) {
        if (!std::strcmp(argv[2], "snic_cpu"))
            platform = hw::Platform::SnicCpu;
        else if (!std::strcmp(argv[2], "snic_accel"))
            platform = hw::Platform::SnicAccel;
    }

    sim::Random rng(42);
    net::DcTraceParams params;
    const auto rates = net::makeDcTrace(params, rng);
    std::printf("Replaying a %zu-bin trace (mean %.2f Gbps, peak "
                "%.2f Gbps) of '%s' on %s\n\n",
                rates.size(), net::traceMean(rates),
                net::tracePeak(rates), id.c_str(),
                hw::platformName(platform));

    // Sparkline of the trace.
    static const char *glyphs[] = {" ", ".", ":", "-", "=", "+",
                                   "*", "#", "%", "@"};
    std::printf("trace: ");
    for (std::size_t i = 0; i < rates.size(); i += 4) {
        // Square-root scale: the trace is mostly far below its peak.
        int level = static_cast<int>(
            9.0 * std::sqrt(rates[i] / net::tracePeak(rates)));
        if (rates[i] > 0.0 && level == 0)
            level = 1;
        std::printf("%s", glyphs[level]);
    }
    std::printf("\n\n");

    TestbedConfig cfg;
    cfg.workloadId = id;
    cfg.platform = platform;
    cfg.seed = 42;
    Testbed bed(cfg);
    const auto m = bed.replaySchedule(rates, sim::msToTicks(2.0));

    std::printf("served %llu requests; avg throughput %.2f Gbps\n",
                static_cast<unsigned long long>(m.completed),
                m.achievedGbps);
    std::printf("latency: p50 %.1f us, p99 %.1f us, mean %.1f us\n",
                m.p50Us(), m.p99Us(), m.meanUs());
    std::printf("power: server %.1f W (SNIC %.2f W), %.1f W above "
                "idle\n",
                m.energy.avgServerWatts, m.energy.avgSnicWatts,
                m.energy.avgServerWatts - 252.0);

    // Where did the time go? Per-stage residency from the pipeline.
    std::printf("\n%-12s %10s %10s %8s %10s %10s\n", "stage",
                "accepted", "dropped", "inflight", "mean us",
                "p99 us");
    for (const auto &s : m.stageStats) {
        std::printf("%-12s %10llu %10llu %8llu %10.2f %10.2f\n",
                    s.name.c_str(),
                    static_cast<unsigned long long>(s.accepted),
                    static_cast<unsigned long long>(s.dropped),
                    static_cast<unsigned long long>(s.inFlight),
                    s.meanResidencyUs, s.p99ResidencyUs);
    }
    return 0;
}
