/**
 * @file
 * Offload advisor (Strategy 2): given an SLO, decide per function
 * whether it belongs on the host CPU, the SNIC CPU, or a SNIC
 * accelerator — the Clara-style what-if analysis the paper calls
 * for, without running a single packet. The second half places a
 * whole service chain: every function gets its own placement, and
 * the DES-backed search is checked against the Meili-style
 * location/bandwidth/resource key heuristic.
 *
 *   ./offload_advisor [p99_us_budget]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/advisor.hh"
#include "sim/logging.hh"
#include "stats/summary.hh"

using namespace snic;
using namespace snic::core;

namespace {

std::string
placementLabel(const std::vector<hw::Platform> &where)
{
    std::string s;
    for (std::size_t k = 0; k < where.size(); ++k) {
        if (k)
            s += "+";
        s += hw::platformName(where[k]);
    }
    return s;
}

void
adviseChain(const std::vector<std::string> &functions,
            const SloConstraint &slo)
{
    std::string name;
    for (const auto &f : functions)
        name += (name.empty() ? "" : " -> ") + f;
    std::printf("\nChain placement: %s (p99 budget %.0f us)\n",
                name.c_str(), slo.p99UsMax);

    ChainAdvisorOptions opts;
    opts.demandGbps = 40.0;
    const ChainAdvice advice =
        adviseChainPlacement(functions, slo, opts);

    stats::Table t("Candidates (heuristic-key order)");
    t.setHeader({"placement", "key", "cap Gbps", "p99 us",
                 "5yr TCO $", "SLO"});
    for (const auto &c : advice.candidates) {
        if (!c.evaluated)
            continue;
        t.addRow({placementLabel(c.where),
                  stats::Table::num(c.key.combined, 3),
                  stats::Table::num(c.capacityGbps, 1),
                  stats::Table::num(c.p99Us, 1),
                  stats::Table::num(c.tco5yrUsd, 0),
                  c.meetsSlo ? "meets" : "MISS"});
    }
    t.print();
    std::printf("%s\n", advice.rationale.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    SloConstraint slo;
    slo.p99UsMax = argc > 1 ? std::atof(argv[1]) : 100.0;

    std::printf("Offload advisor: p99 budget = %.0f us\n\n",
                slo.p99UsMax);

    stats::Table t("Recommendations");
    t.setHeader({"function", "recommendation", "SLO ok",
                 "pred. Gbps", "pred. p99 us", "pred. W",
                 "rationale"});

    for (const char *id :
         {"micro_udp_1024", "micro_rdma_read_1024", "redis_a",
          "snort_exe", "nat_1m", "bm25_1k", "mica_b32", "crypto_aes",
          "crypto_rsa", "crypto_sha1", "rem_img", "rem_exe",
          "comp_app", "ovs_100"}) {
        const Advice advice = adviseOffload(id, slo);
        const PlatformPrediction *chosen = nullptr;
        for (const auto &p : advice.predictions) {
            if (p.platform == advice.recommended && p.supported)
                chosen = &p;
        }
        t.addRow({id, hw::platformName(advice.recommended),
                  advice.sloFeasible ? "yes" : "NO",
                  chosen ? stats::Table::num(chosen->capacityGbps, 1)
                         : "-",
                  chosen ? stats::Table::num(chosen->p99UsAtLoad, 1)
                         : "-",
                  chosen ? stats::Table::num(chosen->serverWatts, 0)
                         : "-",
                  advice.rationale});
    }
    t.print();

    std::printf("Note how the answer is configuration-dependent "
                "(KO4): rem_img offloads, rem_exe does not; SHA-1 "
                "offloads, AES/RSA do not.\n");

    // Service chains: place each function of a decompress -> REM
    // scan -> KVS store chain under the same budget. The key
    // heuristic is latency-blind, so a tight budget exposes it.
    adviseChain({"comp_app_dec", "rem_exe", "redis_a"}, slo);
    return 0;
}
