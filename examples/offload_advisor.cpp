/**
 * @file
 * Offload advisor (Strategy 2): given an SLO, decide per function
 * whether it belongs on the host CPU, the SNIC CPU, or a SNIC
 * accelerator — the Clara-style what-if analysis the paper calls
 * for, without running a single packet.
 *
 *   ./offload_advisor [p99_us_budget]
 */

#include <cstdio>
#include <cstdlib>

#include "core/advisor.hh"
#include "sim/logging.hh"
#include "stats/summary.hh"

using namespace snic;
using namespace snic::core;

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    SloConstraint slo;
    slo.p99UsMax = argc > 1 ? std::atof(argv[1]) : 100.0;

    std::printf("Offload advisor: p99 budget = %.0f us\n\n",
                slo.p99UsMax);

    stats::Table t("Recommendations");
    t.setHeader({"function", "recommendation", "SLO ok",
                 "pred. Gbps", "pred. p99 us", "pred. W",
                 "rationale"});

    for (const char *id :
         {"micro_udp_1024", "micro_rdma_read_1024", "redis_a",
          "snort_exe", "nat_1m", "bm25_1k", "mica_b32", "crypto_aes",
          "crypto_rsa", "crypto_sha1", "rem_img", "rem_exe",
          "comp_app", "ovs_100"}) {
        const Advice advice = adviseOffload(id, slo);
        const PlatformPrediction *chosen = nullptr;
        for (const auto &p : advice.predictions) {
            if (p.platform == advice.recommended && p.supported)
                chosen = &p;
        }
        t.addRow({id, hw::platformName(advice.recommended),
                  advice.sloFeasible ? "yes" : "NO",
                  chosen ? stats::Table::num(chosen->capacityGbps, 1)
                         : "-",
                  chosen ? stats::Table::num(chosen->p99UsAtLoad, 1)
                         : "-",
                  chosen ? stats::Table::num(chosen->serverWatts, 0)
                         : "-",
                  advice.rationale});
    }
    t.print();

    std::printf("Note how the answer is configuration-dependent "
                "(KO4): rem_img offloads, rem_exe does not; SHA-1 "
                "offloads, AES/RSA do not.\n");
    return 0;
}
