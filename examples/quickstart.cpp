/**
 * @file
 * Quickstart: measure one datacenter function on both execution
 * platforms and print the paper-style comparison.
 *
 *   ./quickstart [workload_id]
 *
 * Workload ids are the Table 3 configurations ("redis_a",
 * "rem_img", "crypto_sha1", ...); run with an unknown id to get the
 * full list in the error message of workloads::makeWorkload.
 */

#include <cstdio>
#include <string>

#include "core/report.hh"
#include "core/runner.hh"
#include "sim/logging.hh"

using namespace snic;
using namespace snic::core;

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    const std::string id = argc > 1 ? argv[1] : "redis_a";

    std::printf("snicbench quickstart: measuring '%s' on the host "
                "Xeon and on the BlueField-2 side...\n\n",
                id.c_str());

    ExperimentOptions opts;
    opts.targetSamples = 8000;
    // The batch API measures the host and SNIC sides concurrently.
    ExperimentRunner runner;
    const NormalizedRow row =
        compareOnPlatforms({id}, runner, opts).front();

    auto show = [](const char *label, const RunResult &r) {
        std::printf("%-22s %8.2f Gbps  %8.0f req/s  p99 %8.1f us  "
                    "%6.1f W (server)  %5.2f W (SNIC)\n",
                    label, r.maxGbps, r.maxRps, r.p99Us,
                    r.energy.avgServerWatts, r.energy.avgSnicWatts);
    };
    show("host CPU:", row.host);
    show(row.snic.platform == hw::Platform::SnicAccel
             ? "SNIC accelerator:"
             : "SNIC CPU:",
         row.snic);

    std::printf("\nSNIC / host: throughput %.2fx, p99 latency %.2fx, "
                "energy efficiency %.2fx\n",
                row.throughputRatio, row.p99Ratio,
                row.efficiencyRatio);

    const auto expect = paper::fig4Expectation(id);
    if (expect) {
        std::printf("paper (Fig. 4) bands: throughput "
                    "[%.2f, %.2f], p99 [%.2f, %.2f]\n",
                    expect->throughputRatio.lo,
                    expect->throughputRatio.hi, expect->p99Ratio.lo,
                    expect->p99Ratio.hi);
    }
    return 0;
}
