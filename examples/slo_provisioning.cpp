/**
 * @file
 * Fleet provisioning under an SLO: the datacenter operator's
 * question. Given a function, a p99 budget and an aggregate demand,
 * size a SNIC fleet and a plain-NIC fleet *by simulation* — racks of
 * growing size behind a flow-hash (ECMP-style) ToR — and compare
 * their 5-year TCO (the Sec. 5.2 analysis as a reusable tool).
 *
 * The interesting output is the sim-vs-arithmetic delta: dividing
 * demand by per-server capacity assumes perfectly balanced, loss-
 * free scale-out, while the simulated rack pays for dispatch skew
 * and per-member queueing, and sometimes needs the extra server the
 * division hides.
 *
 *   ./slo_provisioning [workload_id] [demand_gbps] [p99_us]
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/rack.hh"
#include "core/report.hh"
#include "core/tco.hh"
#include "core/throughput_search.hh"
#include "sim/logging.hh"
#include "workloads/registry.hh"

using namespace snic;
using namespace snic::core;

namespace {

/** Per-side provisioning outcome. */
struct SidePlan
{
    double perServerGbps = 0.0;   ///< measured 1-server capacity
    double perServerP99Us = 0.0;  ///< at the operating load factor
    double wattsPerServer = 0.0;
    FleetSizing fleet;
    bool perServerMeets = false;
};

SidePlan
planSide(const std::string &id, hw::Platform platform,
         double demand_gbps, double p99_budget,
         const ExperimentOptions &opts)
{
    SidePlan plan;

    // Per-server capacity, measured on a 1-server pass-through rack
    // (bitwise the standalone testbed, same basis as the rack sims).
    RackConfig base;
    base.workloadId = id;
    base.platform = platform;
    base.servers = 1;
    base.policy = net::DispatchPolicy::PassThrough;
    Rack probe(base);
    const Capacity cap = findCapacity(probe, opts);
    plan.perServerGbps = cap.requestGbps;

    const double spec_lf =
        probe.server(0).workload().spec().operatingLoadFactor;
    const double lf = spec_lf > 0.0 ? spec_lf : opts.loadFactor;
    const RackMeasurement at_load = probe.measure(
        lf * cap.requestGbps, opts.warmup,
        windowFor(cap.rps, opts));
    plan.perServerP99Us = at_load.aggregate.p99Us();
    plan.wattsPerServer = at_load.aggregate.energy.avgServerWatts;
    plan.perServerMeets = plan.perServerP99Us <= p99_budget;

    // Fleet sizing by simulation: racks of growing size behind a
    // flow-hash ToR (the ECMP-style dispatch a real rack gets).
    base.policy = net::DispatchPolicy::FlowHash;
    base.servers = 0;  // overridden per candidate
    plan.fleet = sizeFleetBySimulation(base, demand_gbps, p99_budget,
                                       plan.perServerGbps, opts);
    return plan;
}

void
printSide(const char *label, const SidePlan &p)
{
    std::printf("%s per-server %.2f Gbps, p99 %.1f us at load "
                "(%s SLO)\n",
                label, p.perServerGbps, p.perServerP99Us,
                p.perServerMeets ? "meets" : "VIOLATES");
    const FleetSizing &f = p.fleet;
    std::printf("  arithmetic fleet: %u servers "
                "(ceil of demand / capacity)\n",
                f.arithmeticServers);
    if (f.met) {
        std::printf("  simulated fleet:  %u servers -> %.1f Gbps "
                    "served, p99 %.1f us, dispatch imbalance %.2f\n",
                    f.simulatedServers, f.achievedGbps, f.p99Us,
                    f.imbalance);
        const int delta = f.deltaServers();
        if (delta > 0) {
            std::printf("  sim-vs-ceil delta: +%d server%s — the "
                        "headroom the division hides\n",
                        delta, delta == 1 ? "" : "s");
        } else if (delta < 0) {
            std::printf("  sim-vs-ceil delta: %d — statistical "
                        "multiplexing beats the per-server ceiling\n",
                        delta);
        } else {
            std::printf("  sim-vs-ceil delta: 0 — arithmetic was "
                        "honest for this demand\n");
        }
    } else {
        std::printf("  simulated fleet:  no size in [%u, %u] met "
                    "the SLO (last try: %.1f Gbps, p99 %.1f us)\n",
                    f.arithmeticServers > 1 ? f.arithmeticServers - 1
                                            : 1,
                    f.arithmeticServers + 8, f.achievedGbps, f.p99Us);
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    const std::string id = argc > 1 ? argv[1] : "rem_exe_mtu";
    const double demand_gbps = argc > 2 ? std::atof(argv[2]) : 400.0;
    const double p99_budget = argc > 3 ? std::atof(argv[3]) : 500.0;

    {
        const auto w = workloads::makeWorkload(id);
        if (w->spec().drive != workloads::Drive::Network) {
            std::printf("workload '%s' is not network-driven; rack "
                        "provisioning needs packets to dispatch "
                        "(try rem_exe_mtu, redis_a, ovs_fwd, ...)\n",
                        id.c_str());
            return 1;
        }
    }

    std::printf("Provisioning '%s' for %.0f Gbps aggregate demand "
                "under a %.0f us p99 budget\n"
                "(fleets sized by rack simulation, flow-hash "
                "dispatch)\n\n",
                id.c_str(), demand_gbps, p99_budget);

    ExperimentOptions opts;
    opts.targetSamples = 6000;
    opts.warmup = sim::msToTicks(1.0);
    opts.minWindow = sim::msToTicks(2.0);

    const SidePlan snic =
        planSide(id, snicSideFor(id), demand_gbps, p99_budget, opts);
    const SidePlan host = planSide(id, hw::Platform::HostCpu,
                                   demand_gbps, p99_budget, opts);

    printSide("SNIC side:", snic);
    std::printf("\n");
    printSide("NIC (host) side:", host);
    std::printf("\n");

    if (!snic.fleet.met && !host.fleet.met) {
        std::printf("Neither fleet meets the SLO in the searched "
                    "range; relax the budget or shard the demand.\n");
        return 1;
    }

    TcoInputs in;
    const unsigned snic_servers = snic.fleet.met
                                      ? snic.fleet.simulatedServers
                                      : snic.fleet.arithmeticServers;
    const unsigned nic_servers = host.fleet.met
                                     ? host.fleet.simulatedServers
                                     : host.fleet.arithmeticServers;
    const auto snic_col =
        computeColumn(snic_servers, snic.wattsPerServer, true, in);
    const auto nic_col =
        computeColumn(nic_servers, host.wattsPerServer, false, in);

    std::printf("SNIC fleet: %3u servers x %6.1f W -> 5y TCO "
                "$%9.0f%s\n",
                snic_servers, snic_col.powerPerServerW,
                snic_col.fiveYearTcoUsd,
                snic.fleet.met ? "" : "  [SLO violation]");
    std::printf("NIC fleet:  %3u servers x %6.1f W -> 5y TCO "
                "$%9.0f%s\n",
                nic_servers, nic_col.powerPerServerW,
                nic_col.fiveYearTcoUsd,
                host.fleet.met ? "" : "  [SLO violation]");

    if (snic.fleet.met && host.fleet.met) {
        const double savings =
            (nic_col.fiveYearTcoUsd - snic_col.fiveYearTcoUsd) /
            nic_col.fiveYearTcoUsd;
        if (savings >= 0.0) {
            std::printf("\nSNIC saves %.1f%% of the 5-year TCO for "
                        "this function and SLO.\n", savings * 100.0);
        } else {
            std::printf("\nSNIC COSTS %.1f%% more 5-year TCO for "
                        "this function and SLO — the fleet the SLO "
                        "forces is larger than the power saving "
                        "repays.\n", -savings * 100.0);
        }
    } else if (snic.fleet.met) {
        std::printf("\nOnly the SNIC fleet meets the SLO.\n");
    } else {
        std::printf("\nOnly the NIC (host) fleet meets the SLO — "
                    "the Sec. 5.1 situation where the SNIC's power "
                    "saving is unusable.\n");
    }
    return 0;
}
