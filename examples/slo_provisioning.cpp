/**
 * @file
 * Fleet provisioning under an SLO: the datacenter operator's
 * question. Given a function, a p99 budget and an aggregate demand,
 * size a SNIC fleet and a plain-NIC fleet, and compare their 5-year
 * TCO (the Sec. 5.2 analysis as a reusable tool).
 *
 *   ./slo_provisioning [workload_id] [demand_gbps] [p99_us]
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/report.hh"
#include "core/runner.hh"
#include "core/tco.hh"
#include "sim/logging.hh"

using namespace snic;
using namespace snic::core;

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    const std::string id = argc > 1 ? argv[1] : "comp_app";
    const double demand_gbps = argc > 2 ? std::atof(argv[2]) : 400.0;
    const double p99_budget = argc > 3 ? std::atof(argv[3]) : 500.0;

    std::printf("Provisioning '%s' for %.0f Gbps aggregate demand "
                "under a %.0f us p99 budget\n\n",
                id.c_str(), demand_gbps, p99_budget);

    ExperimentOptions opts;
    opts.targetSamples = 8000;
    // Measure both fleet candidates concurrently.
    ExperimentRunner runner;
    const NormalizedRow row =
        compareOnPlatforms({id}, runner, opts).front();

    const bool snic_meets = row.snic.p99Us <= p99_budget;
    const bool host_meets = row.host.p99Us <= p99_budget;
    std::printf("per-server: SNIC side %.2f Gbps at p99 %.1f us "
                "(%s SLO); host side %.2f Gbps at p99 %.1f us "
                "(%s SLO)\n\n",
                row.snic.maxGbps, row.snic.p99Us,
                snic_meets ? "meets" : "VIOLATES", row.host.maxGbps,
                row.host.p99Us, host_meets ? "meets" : "VIOLATES");

    if (!snic_meets && !host_meets) {
        std::printf("Neither platform meets the SLO at full load; "
                    "relax the budget or shard the demand.\n");
        return 1;
    }

    const auto servers_for = [&](double per_server_gbps) {
        return static_cast<unsigned>(
            std::ceil(demand_gbps / per_server_gbps));
    };
    TcoInputs in;
    const unsigned snic_servers = servers_for(row.snic.maxGbps);
    const unsigned nic_servers = servers_for(row.host.maxGbps);
    const auto snic_col = computeColumn(
        snic_servers, row.snic.energy.avgServerWatts, true, in);
    const auto nic_col = computeColumn(
        nic_servers, row.host.energy.avgServerWatts, false, in);

    std::printf("SNIC fleet: %3u servers x %6.1f W -> 5y TCO "
                "$%9.0f%s\n",
                snic_servers, snic_col.powerPerServerW,
                snic_col.fiveYearTcoUsd,
                snic_meets ? "" : "  [SLO violation]");
    std::printf("NIC fleet:  %3u servers x %6.1f W -> 5y TCO "
                "$%9.0f%s\n",
                nic_servers, nic_col.powerPerServerW,
                nic_col.fiveYearTcoUsd,
                host_meets ? "" : "  [SLO violation]");

    if (snic_meets && host_meets) {
        const double savings =
            (nic_col.fiveYearTcoUsd - snic_col.fiveYearTcoUsd) /
            nic_col.fiveYearTcoUsd;
        std::printf("\nSNIC saves %.1f%% of the 5-year TCO for this "
                    "function and SLO.\n", savings * 100.0);
    } else if (snic_meets) {
        std::printf("\nOnly the SNIC fleet meets the SLO.\n");
    } else {
        std::printf("\nOnly the NIC (host) fleet meets the SLO — "
                    "the Sec. 5.1 situation where the SNIC's power "
                    "saving is unusable.\n");
    }
    return 0;
}
